//! Regenerate every table and figure of the paper.
//!
//! ```text
//! experiments [tiny|small|paper] [seed] [--procs=N]
//! ```
//!
//! Prints each experiment in the paper's layout and writes the raw data
//! as JSON to `results/`. Absolute counts scale with the chosen
//! ecosystem size; `EXPERIMENTS.md` records paper-vs-measured.
//!
//! `--procs=N` (N > 1) runs the passive harvest across N worker
//! processes via `mlpeer_dist` — byte-identical results, recorded under
//! the `procs` key alongside `threads` in the output JSON.

use std::collections::BTreeMap;
use std::fs;

use mlpeer::analysis;
use mlpeer::report::{ccdf, cdf, Table};
use mlpeer::validate::{validate_links, ValidationConfig};
use mlpeer_bench::{run_pipeline, Scale};
use mlpeer_data::lg::{LgDisplay, LgTarget};
use mlpeer_ixp::{Ecosystem, PeeringPolicy};

fn main() {
    let mut procs: usize = 1;
    let args: Vec<String> = std::env::args()
        .filter(|a| {
            if let Some(v) = a.strip_prefix("--procs=") {
                procs = v.parse().expect("--procs=N");
                false
            } else {
                true
            }
        })
        .collect();
    let scale = args
        .get(1)
        .and_then(|s| Scale::parse(s))
        .unwrap_or(Scale::Small);
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(20130501);
    let _ = fs::create_dir_all("results");
    let mut json = serde_json::Map::new();
    json.insert("scale".into(), format!("{scale:?}").into());
    json.insert("seed".into(), seed.into());
    // Shard fan-out: all cores unless MLPEER_THREADS pins it lower
    // (honored by the sharded passive harvest via rayon), and worker
    // processes when --procs asks for them.
    let threads = rayon::current_num_threads();
    json.insert("threads".into(), threads.into());
    json.insert("procs".into(), procs.into());
    json.insert(
        "mlpeer_threads_override".into(),
        serde_json::to_value(&rayon::env_threads()),
    );

    eprintln!("# generating ecosystem ({scale:?}, seed {seed})…");
    eprintln!(
        "# shard fan-out: {threads} thread(s){}",
        if rayon::env_threads().is_some() {
            " (MLPEER_THREADS override)"
        } else {
            ""
        }
    );
    let eco = Ecosystem::generate(scale.config(seed));
    eprintln!("# running pipeline…");
    let dist_stats = mlpeer_dist::DistStats::new(procs as u64);
    let p = if procs > 1 {
        eprintln!("# passive harvest across {procs} worker processes…");
        mlpeer_bench::run_pipeline_dist(
            &eco,
            scale.word(),
            seed,
            &mlpeer_dist::DistConfig::new(procs),
            &dist_stats,
        )
    } else {
        run_pipeline(&eco, seed)
    };
    if procs > 1 {
        let s = dist_stats.snapshot();
        eprintln!(
            "# dist: spawned {}, retried {}, degraded {}, {} frames / {} bytes",
            s.spawned, s.retried, s.degraded, s.frames, s.bytes
        );
    }

    // ---------------- Table 1 ----------------
    println!("== Table 1: RS community patterns ==");
    let mut t = Table::new(["IXP", "RS-ASN", "ALL", "EXCLUDE", "NONE", "INCLUDE"]);
    use mlpeer_ixp::scheme::RsAction;
    for name in ["DE-CIX", "MSK-IX", "ECIX"] {
        let ixp = eco.ixp_by_name(name).unwrap();
        let s = &ixp.scheme;
        let peer = ixp.rs_member_asns()[0];
        t.row([
            name.to_string(),
            s.rs_asn.to_string(),
            s.encode(RsAction::All).unwrap().to_string(),
            s.encode(RsAction::Exclude(peer))
                .unwrap()
                .to_string()
                .replace(&peer.to_string(), "peer"),
            s.encode(RsAction::None).unwrap().to_string(),
            s.encode(RsAction::Include(peer))
                .unwrap()
                .to_string()
                .replace(&peer.to_string(), "peer"),
        ]);
    }
    println!("{}", t.render());

    // ---------------- Table 2 ----------------
    println!("== Table 2: per-IXP inference (paper: 206,667 links, 1,363 ASNs) ==");
    let mut t = Table::new(["IXP", "LG", "ASes", "RS", "Pasv", "Active", "Links"]);
    let mut table2_rows = Vec::new();
    for ixp in &eco.ixps {
        let pasv = p
            .observations
            .iter()
            .filter(|o| o.ixp == ixp.id && o.source == mlpeer::ObservationSource::Passive)
            .map(|o| o.member)
            .collect::<std::collections::BTreeSet<_>>()
            .len();
        let covered = p.links.covered.get(&ixp.id).map(|c| c.len()).unwrap_or(0);
        let active = covered.saturating_sub(pasv);
        let links = p.links.links_at(ixp.id).len();
        t.row([
            ixp.name.clone(),
            if ixp.has_lg { "Y".into() } else { "N".into() },
            ixp.member_count().to_string(),
            ixp.rs_member_count().to_string(),
            pasv.to_string(),
            active.to_string(),
            links.to_string(),
        ]);
        table2_rows.push(serde_json::json!({
            "ixp": ixp.name, "ases": ixp.member_count(), "rs": ixp.rs_member_count(),
            "pasv": pasv, "active": active, "links": links,
        }));
    }
    println!("{}", t.render());
    let unique = p.links.unique_links();
    let overlap = p.links.per_ixp_total() - unique.len();
    println!(
        "total unique links: {}   distinct ASNs: {}",
        unique.len(),
        p.links.distinct_asns().len()
    );
    println!("multi-IXP overlap:  {}", overlap);
    let ams = eco.ixp_by_name("AMS-IX").unwrap().id;
    let dec = eco.ixp_by_name("DE-CIX").unwrap().id;
    println!("AMS-IX ∩ DE-CIX:    {}\n", p.links.common_links(ams, dec));
    json.insert(
        "table2".into(),
        serde_json::json!({
            "rows": table2_rows, "unique": unique.len(),
            "asns": p.links.distinct_asns().len(), "overlap": overlap,
            "ams_de_common": p.links.common_links(ams, dec),
        }),
    );

    // ---------------- Fig. 5 ----------------
    println!("== Fig. 5: CCDF of members advertising a prefix (DE-CIX; paper: 48.4 % > 1) ==");
    let decix = eco.ixp_by_name("DE-CIX").unwrap();
    let rib = decix.rs_rib();
    let mult: Vec<f64> = rib.iter().map(|(_, e)| e.len() as f64).collect();
    let multi_frac = mult.iter().filter(|&&m| m > 1.0).count() as f64 / mult.len().max(1) as f64;
    let mut last: std::collections::BTreeMap<u64, f64> = Default::default();
    for (x, y) in ccdf(&mult) {
        last.insert(x as u64, y);
    }
    for (x, y) in last.iter().take(10) {
        println!("  >{x:>2} members: {y:.3}");
    }
    println!("fraction announced by >1 member: {multi_frac:.3}\n");
    json.insert("fig5_multi_frac".into(), multi_frac.into());

    // ---------------- §4.3 cost ----------------
    println!("== §4.3: query cost (paper: ≈8,400 max; 18× fewer than naive; <17 h) ==");
    let mut t = Table::new([
        "IXP",
        "cost c",
        "naive (no mult-sort)",
        "full (all prefixes)",
        "hours@10s",
    ]);
    let mut max_cost = 0usize;
    for (ixp, stats) in &p.active_stats {
        let name = &eco.ixp(*ixp).name;
        let cost = stats.cost();
        max_cost = max_cost.max(cost);
        t.row([
            name.clone(),
            cost.to_string(),
            (stats.summary_queries + stats.neighbor_queries + stats.naive_prefix_queries)
                .to_string(),
            (stats.summary_queries + stats.neighbor_queries + stats.full_prefix_queries)
                .to_string(),
            format!("{:.1}", stats.wall_clock_secs(10) as f64 / 3600.0),
        ]);
    }
    println!("{}", t.render());
    println!(
        "max per-IXP cost: {max_cost} queries → {:.1} h at 1 q/10 s (IXPs run in parallel)\n",
        max_cost as f64 * 10.0 / 3600.0
    );
    json.insert("cost_max".into(), max_cost.into());

    // ---------------- §4.4 reciprocity ----------------
    println!("== §4.4: reciprocity (paper: 230 members, 0 violations, ~half more permissive) ==");
    let amsix = eco.ixp_by_name("AMS-IX").unwrap();
    let members: std::collections::BTreeSet<_> = amsix.rs_member_asns().into_iter().collect();
    let rec = mlpeer::reciprocity::study_reciprocity(&p.irr, &members);
    println!("members with IRR filters: {}", rec.members_with_filters);
    println!("violations:               {}", rec.violations.len());
    println!(
        "import more permissive:   {} ({:.0} %)\n",
        rec.import_more_permissive,
        rec.more_permissive_frac() * 100.0
    );
    json.insert(
        "reciprocity".into(),
        serde_json::json!({
            "members": rec.members_with_filters, "violations": rec.violations.len(),
            "more_permissive_frac": rec.more_permissive_frac(),
        }),
    );

    // ---------------- Fig. 6 ----------------
    println!("== Fig. 6: visibility (paper: 11.9 % overlap w/ BGP; 88 % invisible; tiny traceroute overlap) ==");
    let vis = analysis::visibility(&eco, &p.links, &p.passive, &p.traceroute, &p.rels);
    println!("MLP links:                {}", vis.mlp_links.len());
    println!("public BGP p2p links:     {}", vis.public_p2p.len());
    println!(
        "MLP ∩ public p2p:         {} ({:.1} %)",
        vis.overlap_public,
        100.0 * vis.overlap_public as f64 / vis.mlp_links.len().max(1) as f64
    );
    println!("invisible fraction:       {:.3}", vis.invisible_frac());
    println!(
        "peering gain over public: {:.0} %",
        vis.peering_gain() * 100.0
    );
    println!("MLP ∩ traceroute:         {}", vis.overlap_traceroute);
    println!(
        "rank  member  MLP  passive  active (first 10 of {}):",
        vis.per_member.len()
    );
    for (i, (m, mlp, pasv, act)) in vis.per_member.iter().take(10).enumerate() {
        println!(
            "  {:>3}  AS{:<7} {:>4} {:>5} {:>5}",
            i + 1,
            m.value(),
            mlp,
            pasv,
            act
        );
    }
    println!();
    json.insert(
        "fig6".into(),
        serde_json::json!({
            "mlp": vis.mlp_links.len(), "public_p2p": vis.public_p2p.len(),
            "overlap_public": vis.overlap_public, "invisible_frac": vis.invisible_frac(),
            "overlap_traceroute": vis.overlap_traceroute,
        }),
    );

    // ---------------- Fig. 7 ----------------
    println!("== Fig. 7: endpoint degrees (paper: 12.4 % stub–stub, 55.6 % ≥1 stub, 58.1 % ≤10 cust, 1.4 % visible) ==");
    let deg = analysis::degrees(&eco, &p.links, &vis.public_links);
    println!(
        "stub–stub links:            {:.1} %",
        deg.stub_stub_frac * 100.0
    );
    println!(
        "links involving a stub:     {:.1} %",
        deg.involves_stub_frac * 100.0
    );
    println!(
        "links w/ ≤10-customer AS:   {:.1} %",
        deg.leq10_frac * 100.0
    );
    println!(
        "stub–stub publicly visible: {:.1} %",
        deg.stub_stub_public_frac * 100.0
    );
    let small_degs: Vec<f64> = deg.pairs.iter().map(|(lo, _)| *lo as f64).collect();
    let pts = cdf(&small_degs);
    for q in [0.25, 0.5, 0.75, 0.9] {
        let idx = ((pts.len() - 1) as f64 * q) as usize;
        println!("  CDF smallest-degree q{:.0}: {}", q * 100.0, pts[idx].0);
    }
    println!();
    json.insert(
        "fig7".into(),
        serde_json::json!({
            "stub_stub": deg.stub_stub_frac, "involves_stub": deg.involves_stub_frac,
            "leq10": deg.leq10_frac, "stub_stub_public": deg.stub_stub_public_frac,
        }),
    );

    // ---------------- Table 3 + Fig. 8 ----------------
    println!("== Table 3 / Fig. 8: validation (paper: 96.9–100 % per IXP, 98.4 % overall) ==");
    let member_lgs: Vec<_> = p
        .lgs
        .iter()
        .filter(|l| matches!(l.target, LgTarget::Member(_)))
        .cloned_hosts();
    let val = validate_links(
        &p.sim,
        &p.links,
        &member_lgs,
        &p.geo,
        &ValidationConfig::default(),
    );
    let mut t = Table::new(["IXP", "Tested", "Tested %", "Confirmed", "Confirmed %"]);
    for (ixp, (tested, confirmed)) in &val.per_ixp {
        let total = p.links.links_at(*ixp).len().max(1);
        t.row([
            eco.ixp(*ixp).name.clone(),
            tested.to_string(),
            format!("{:.1}", 100.0 * *tested as f64 / total as f64),
            confirmed.to_string(),
            format!("{:.1}", 100.0 * *confirmed as f64 / (*tested).max(1) as f64),
        ]);
    }
    println!("{}", t.render());
    println!(
        "links tested: {}  confirmed: {}  rate: {:.1} %",
        val.links_tested,
        val.links_confirmed,
        val.confirm_rate() * 100.0
    );
    let mut by_display: BTreeMap<&str, Vec<f64>> = BTreeMap::new();
    for lg in &val.per_lg {
        let key = match lg.display {
            LgDisplay::AllPaths => "all-paths",
            LgDisplay::BestOnly => "best-only",
        };
        by_display.entry(key).or_default().push(lg.frac());
    }
    for (k, v) in &by_display {
        let mean = v.iter().sum::<f64>() / v.len().max(1) as f64;
        println!(
            "  {k} LGs: {} hosts, mean confirmed fraction {mean:.3}",
            v.len()
        );
    }
    println!();
    json.insert(
        "table3".into(),
        serde_json::json!({
            "tested": val.links_tested, "confirmed": val.links_confirmed,
            "rate": val.confirm_rate(),
        }),
    );

    // ---------------- Fig. 9 / Fig. 10 ----------------
    println!("== Fig. 9/10: policy vs participation (paper: 92/75/43 % use RS; 55.8 % single-IXP+RS; 13.4 % no RS) ==");
    let pol = analysis::policy_participation(&eco, &p.pdb);
    println!(
        "members with reported policy: {} of {}",
        pol.with_policy, pol.total_members
    );
    println!(
        "mix: open {} selective {} restrictive {}",
        pol.mix.0, pol.mix.1, pol.mix.2
    );
    for (policy, (n, with_rs)) in &pol.rs_usage {
        println!(
            "  {policy}: {with_rs}/{n} use ≥1 RS ({:.0} %)",
            100.0 * *with_rs as f64 / (*n).max(1) as f64
        );
    }
    println!(
        "single-IXP-with-RS: {:.1} %   never-RS: {:.1} %\n",
        pol.single_ixp_with_rs_frac() * 100.0,
        pol.no_rs_frac() * 100.0
    );
    json.insert(
        "fig9_10".into(),
        serde_json::json!({
            "mix": [pol.mix.0, pol.mix.1, pol.mix.2],
            "single_ixp_rs": pol.single_ixp_with_rs_frac(), "no_rs": pol.no_rs_frac(),
        }),
    );

    // ---------------- Fig. 11 ----------------
    println!("== Fig. 11: allowed fraction by policy (paper means: 96.7 / 80.4 / 69.2 %) ==");
    let filt = analysis::filter_patterns(&p.links, &p.conn, &p.pdb);
    for policy in [
        PeeringPolicy::Open,
        PeeringPolicy::Selective,
        PeeringPolicy::Restrictive,
    ] {
        println!(
            "  {policy}: mean {:.1} % over {} member-IXP pairs",
            filt.mean(policy) * 100.0,
            filt.fractions.get(&policy).map(Vec::len).unwrap_or(0)
        );
    }
    println!(
        "bimodal (outside 10–90 %): {:.1} %\n",
        filt.bimodal_frac() * 100.0
    );
    json.insert(
        "fig11".into(),
        serde_json::json!({
            "open": filt.mean(PeeringPolicy::Open),
            "selective": filt.mean(PeeringPolicy::Selective),
            "restrictive": filt.mean(PeeringPolicy::Restrictive),
            "bimodal": filt.bimodal_frac(),
        }),
    );

    // ---------------- Fig. 12 ----------------
    println!("== Fig. 12: peering density per IXP (paper means: 0.79–0.95) ==");
    let den = analysis::density(&eco, &p.links);
    let mut fig12 = serde_json::Map::new();
    for ixp in den.per_ixp.keys() {
        let name = &eco.ixp(*ixp).name;
        println!("  {name}: mean density {:.2}", den.mean(*ixp));
        fig12.insert(name.clone(), den.mean(*ixp).into());
    }
    println!();
    json.insert("fig12".into(), fig12.into());

    // ---------------- Fig. 13 / §5.5 ----------------
    println!("== Fig. 13/§5.5: repellers (paper: 570 repelled; 1,795 EXCLUDEs; 12 % direct customer; 77 % in cone) ==");
    let rep = analysis::repellers(&eco, &p.links, &p.pdb);
    println!("EXCLUDE applications:       {}", rep.exclude_applications);
    println!("distinct repelled ASes:     {}", rep.distinct_repelled);
    println!(
        "provider blocks customer:   {:.1} %",
        100.0 * rep.provider_blocks_customer as f64 / rep.exclude_applications.max(1) as f64
    );
    println!(
        "target in blocker's cone:   {:.1} %",
        100.0 * rep.in_customer_cone as f64 / rep.exclude_applications.max(1) as f64
    );
    if let Some((asn, blocks, blockers)) = rep.top_repelled {
        let tag = if asn == eco.google_like {
            " (the Google-like content giant)"
        } else {
            ""
        };
        println!(
            "top repelled: AS{} blocked {}× by {} ASes{}",
            asn.value(),
            blocks,
            blockers,
            tag
        );
    }
    println!();
    json.insert("fig13".into(), serde_json::json!({
        "excludes": rep.exclude_applications, "repelled": rep.distinct_repelled,
        "direct_customer_frac": rep.provider_blocks_customer as f64 / rep.exclude_applications.max(1) as f64,
        "in_cone_frac": rep.in_customer_cone as f64 / rep.exclude_applications.max(1) as f64,
    }));

    // ---------------- §5.6 hybrid ----------------
    println!("== §5.6: hybrid relationships (paper: 1,230 candidates, 202 verified) ==");
    let hyb = analysis::hybrid(&p.sim, &p.links, &vis.public_links, &p.rels);
    println!("p2c-classified MLP links: {}", hyb.p2c_candidates.len());
    println!("verified via tag communities: {}", hyb.verified.len());
    println!(
        "ground-truth hybrid pairs in ecosystem: {}\n",
        eco.hybrid_pairs.len()
    );
    json.insert(
        "hybrid".into(),
        serde_json::json!({
            "candidates": hyb.p2c_candidates.len(), "verified": hyb.verified.len(),
            "ground_truth": eco.hybrid_pairs.len(),
        }),
    );

    // ---------------- §5.7 estimate ----------------
    println!("== §5.7: global estimate (paper: EU 558,291 / 399,732 unique; global 686,104 / 510,870; conservative 596,011 / 422,423) ==");
    let est = analysis::estimate(&analysis::global_ixp_table(), 0.28);
    println!(
        "Europe total:        {:>9.0}   unique: {:>9.0}",
        est.europe_total, est.europe_unique
    );
    println!(
        "Global total:        {:>9.0}   unique: {:>9.0}",
        est.global_total, est.global_unique
    );
    println!(
        "Conservative total:  {:>9.0}   unique: {:>9.0}\n",
        est.conservative_total, est.conservative_unique
    );
    json.insert(
        "estimate".into(),
        serde_json::json!({
            "eu_total": est.europe_total, "eu_unique": est.europe_unique,
            "global_total": est.global_total, "global_unique": est.global_unique,
            "conservative_total": est.conservative_total,
        }),
    );

    let out = serde_json::Value::Object(json);
    let path = format!("results/experiments-{scale:?}-{seed}.json").to_lowercase();
    fs::write(&path, serde_json::to_string_pretty(&out).unwrap()).expect("write results");
    eprintln!("# wrote {path}");
}

/// Tiny helper: clone LookingGlassHost values out of an iterator of
/// references (hosts are cheap: name + enums + a counter).
trait ClonedHosts {
    fn cloned_hosts(self) -> Vec<mlpeer_data::lg::LookingGlassHost>;
}

impl<'a, I: Iterator<Item = &'a mlpeer_data::lg::LookingGlassHost>> ClonedHosts for I {
    fn cloned_hosts(self) -> Vec<mlpeer_data::lg::LookingGlassHost> {
        self.map(|l| mlpeer_data::lg::LookingGlassHost::new(l.name.clone(), l.target, l.display))
            .collect()
    }
}
