//! # `mlpeer-bench` — experiment harness
//!
//! Wires the full reproduction pipeline together: generate the
//! calibrated ecosystem, build every data-source substrate, run the
//! passive and active inference stages (§4.1–§4.3), and hand the
//! results to the per-figure analyses (§5). The `experiments` binary
//! renders every table and figure of the paper; the Criterion benches
//! are `benches/benches.rs` (codecs, RS engine, planner, pipeline),
//! `benches/passive_sharding.rs` (serial vs sharded harvest →
//! `BENCH_passive.json`), `benches/live_churn.rs` (live-mode delta
//! apply vs full re-harvest → `BENCH_live.json`) and
//! `benches/dist_load.rs` (multi-process harvest → `BENCH_dist.json`).
//!
//! The stages themselves live in [`mlpeer::pipeline`] (shared with the
//! multi-process coordinator); this crate composes them — serially in
//! [`run_pipeline`], or with the passive stage swapped out via
//! [`run_pipeline_with`] / [`run_pipeline_dist`]. Every variant is
//! byte-identical by construction: only the passive harvest's
//! execution strategy differs, never its fold.

use mlpeer::active::ActiveStats;
use mlpeer::connectivity::ConnectivityData;
use mlpeer::dict::CommunityDictionary;
use mlpeer::infer::{MlpLinkSet, Observation};
use mlpeer::passive::{harvest_passive_sharded, PassiveConfig, PassiveStats};
use mlpeer::pipeline::{prepare, run_active_stage, PipelinePrep, TeeSink};
use mlpeer_data::collector::PassiveDataset;
use mlpeer_data::geo::GeoDb;
use mlpeer_data::irr::{IrrDatabase, Source};
use mlpeer_data::lg::LookingGlassHost;
use mlpeer_data::peeringdb::{PeeringDb, PeeringDbConfig};
use mlpeer_data::traceroute::{build_traceroute, TracerouteDataset};
use mlpeer_data::Sim;
use mlpeer_dist::{harvest_passive_dist, DistConfig, DistStats};
use mlpeer_ixp::ixp::IxpId;
use mlpeer_ixp::{Ecosystem, EcosystemConfig};
use mlpeer_topo::infer::InferredRelationships;

/// Scale presets for the experiment and serving binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// ~8 % of Table 2 (seconds).
    Tiny,
    /// ~25 % of Table 2 (tens of seconds).
    Small,
    /// ~50 % of Table 2 — the serving/indexing bench scale.
    Medium,
    /// ~75 % of Table 2 — the second point of the benchmark scale
    /// axis (`BENCH_*.json` records at Medium *and* Large).
    Large,
    /// Table 2 scale (minutes).
    Paper,
}

impl Scale {
    /// Ecosystem config for this scale.
    pub fn config(self, seed: u64) -> EcosystemConfig {
        match self {
            Scale::Tiny => EcosystemConfig::tiny(seed),
            Scale::Small => EcosystemConfig::small(seed),
            Scale::Medium => EcosystemConfig::medium(seed),
            Scale::Large => EcosystemConfig::large(seed),
            Scale::Paper => EcosystemConfig::paper_scale(seed),
        }
    }

    /// Parse from a CLI word.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "tiny" => Some(Scale::Tiny),
            "small" => Some(Scale::Small),
            "medium" => Some(Scale::Medium),
            "large" => Some(Scale::Large),
            "paper" | "full" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// The lowercase word used in CLI flags and BENCH records.
    pub fn word(self) -> &'static str {
        match self {
            Scale::Tiny => "tiny",
            Scale::Small => "small",
            Scale::Medium => "medium",
            Scale::Large => "large",
            Scale::Paper => "paper",
        }
    }
}

/// Everything the analyses need, produced by one pipeline run.
pub struct Pipeline<'e> {
    /// The shared routing simulation.
    pub sim: Sim<'e>,
    /// IRR registries.
    pub irr: std::collections::BTreeMap<Source, IrrDatabase>,
    /// All looking glasses (RS + member).
    pub lgs: Vec<LookingGlassHost>,
    /// Connectivity data.
    pub conn: ConnectivityData,
    /// The community dictionary.
    pub dict: CommunityDictionary,
    /// Archived collector data.
    pub passive: PassiveDataset,
    /// Relationship inference over public paths.
    pub rels: InferredRelationships,
    /// All observations (passive + active).
    pub observations: Vec<Observation>,
    /// Passive-pipeline statistics.
    pub passive_stats: PassiveStats,
    /// Active statistics per IXP.
    pub active_stats: Vec<(IxpId, ActiveStats)>,
    /// The inferred links.
    pub links: MlpLinkSet,
    /// Traceroute dataset (Ark/DIMES stand-in).
    pub traceroute: TracerouteDataset,
    /// PeeringDB.
    pub pdb: PeeringDb,
    /// Geolocation.
    pub geo: GeoDb,
}

/// Run the complete inference pipeline over an ecosystem, with the
/// passive stage supplied by `passive`: a closure given the prepared
/// substrates that returns the filled tee and the harvest stats. Every
/// stage around it is identical across callers, which is what makes
/// the serial, thread-sharded, and multi-process variants
/// byte-identical end to end.
pub fn run_pipeline_with<'e>(
    eco: &'e Ecosystem,
    seed: u64,
    passive: impl FnOnce(&PipelinePrep<'e>) -> (TeeSink, PassiveStats),
) -> Pipeline<'e> {
    let prep = prepare(eco, seed);

    // Passive first (it reduces active cost, Eq. 2), then active per
    // IXP, streaming into the same tee.
    let (mut sink, passive_stats) = passive(&prep);
    let active_stats = run_active_stage(eco, &prep, &mut sink);

    let (observations, inferencer) = sink;
    let links = inferencer.finalize(&prep.conn);
    let traceroute = build_traceroute(&prep.sim, seed ^ 0x44, 60);
    let pdb = PeeringDb::build(
        eco,
        &PeeringDbConfig {
            seed: seed ^ 0x55,
            ..Default::default()
        },
    );
    let geo = GeoDb::build(eco);

    let PipelinePrep {
        sim,
        irr,
        lgs,
        conn,
        dict,
        passive,
        rels,
    } = prep;
    Pipeline {
        sim,
        irr,
        lgs,
        conn,
        dict,
        passive,
        rels,
        observations,
        passive_stats,
        active_stats,
        links,
        traceroute,
        pdb,
        geo,
    }
}

/// Run the complete inference pipeline over an ecosystem (the serial /
/// thread-sharded passive stage).
pub fn run_pipeline(eco: &Ecosystem, seed: u64) -> Pipeline<'_> {
    run_pipeline_with(eco, seed, |prep| {
        harvest_passive_sharded::<TeeSink>(
            &prep.passive,
            &prep.dict,
            &prep.conn,
            &prep.rels,
            &PassiveConfig::default(),
        )
    })
}

/// Run the pipeline with the passive stage distributed across worker
/// processes per `cfg` (see `mlpeer_dist` for the fault model).
/// `scale` must be the scale word `eco` was generated from. Byte-
/// identical to [`run_pipeline`] on the same `(eco, seed)`.
pub fn run_pipeline_dist<'e>(
    eco: &'e Ecosystem,
    scale: &str,
    seed: u64,
    cfg: &DistConfig,
    stats: &DistStats,
) -> Pipeline<'e> {
    run_pipeline_with(eco, seed, |prep| {
        harvest_passive_dist(scale, seed, prep, cfg, stats)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_runs_end_to_end_on_tiny() {
        let eco = Ecosystem::generate(EcosystemConfig::tiny(2024));
        let p = run_pipeline(&eco, 2024);
        assert!(!p.observations.is_empty());
        assert!(!p.links.unique_links().is_empty());
        assert!(p.links.per_ixp_total() >= p.links.unique_links().len());
        // Soundness: every inferred link is a ground-truth link.
        let truth = eco.all_ground_truth_links();
        for l in p.links.unique_links() {
            assert!(truth.contains(&l), "false link {l:?}");
        }
    }

    #[test]
    fn inference_recovers_most_mutual_links_at_lg_ixps() {
        let eco = Ecosystem::generate(EcosystemConfig::tiny(2025));
        let p = run_pipeline(&eco, 2025);
        for ixp in &eco.ixps {
            if !ixp.has_lg || ixp.filter_portal {
                continue;
            }
            let mutual = ixp.mutual_links();
            let got = p.links.links_at(ixp.id);
            let hit = mutual.iter().filter(|l| got.contains(l)).count();
            let frac = hit as f64 / mutual.len().max(1) as f64;
            assert!(
                frac > 0.95,
                "{}: recovered only {frac:.2} of mutual links ({hit}/{})",
                ixp.name,
                mutual.len()
            );
        }
    }

    /// The dist wrapper with `workers: 1` (pure in-process) produces
    /// the same links and observations as the serial pipeline —
    /// the equivalence the fault-injection e2e suite then extends to
    /// real worker processes.
    #[test]
    fn dist_pipeline_with_one_worker_matches_serial() {
        let eco = Ecosystem::generate(EcosystemConfig::tiny(2024));
        let serial = run_pipeline(&eco, 2024);
        let cfg = DistConfig {
            workers: 1,
            worker_cmd: None,
            ..DistConfig::new(1)
        };
        let stats = DistStats::new(1);
        let dist = run_pipeline_dist(&eco, "tiny", 2024, &cfg, &stats);
        assert_eq!(dist.links, serial.links);
        assert_eq!(dist.observations, serial.observations);
        assert_eq!(dist.passive_stats, serial.passive_stats);
    }
}
