//! # `mlpeer-bench` — experiment harness
//!
//! Wires the full reproduction pipeline together: generate the
//! calibrated ecosystem, build every data-source substrate, run the
//! passive and active inference stages (§4.1–§4.3), and hand the
//! results to the per-figure analyses (§5). The `experiments` binary
//! renders every table and figure of the paper; the Criterion benches
//! are `benches/benches.rs` (codecs, RS engine, planner, pipeline),
//! `benches/passive_sharding.rs` (serial vs sharded harvest →
//! `BENCH_passive.json`) and `benches/live_churn.rs` (live-mode delta
//! apply vs full re-harvest → `BENCH_live.json`).

use std::collections::BTreeSet;

use mlpeer::active::{query_member_lgs, query_rs_lg, ActiveConfig, ActiveStats};
use mlpeer::connectivity::{gather_connectivity, ConnectivityData};
use mlpeer::dict::{dictionary_from_connectivity, CommunityDictionary};
use mlpeer::infer::{LinkInferencer, MlpLinkSet, Observation, ObservationSource};
use mlpeer::passive::{harvest_passive_sharded, PassiveConfig, PassiveStats};
use mlpeer_bgp::{Asn, Prefix};
use mlpeer_data::collector::{build_passive, CollectorConfig, PassiveDataset};
use mlpeer_data::geo::GeoDb;
use mlpeer_data::irr::{build_irr, IrrConfig, IrrDatabase, Source};
use mlpeer_data::lg::{build_lg_roster, LgTarget, LookingGlassHost};
use mlpeer_data::peeringdb::{PeeringDb, PeeringDbConfig};
use mlpeer_data::traceroute::{build_traceroute, TracerouteDataset};
use mlpeer_data::Sim;
use mlpeer_ixp::ixp::IxpId;
use mlpeer_ixp::{Ecosystem, EcosystemConfig};
use mlpeer_topo::infer::{infer_relationships, InferConfig, InferredRelationships};

/// Scale presets for the experiment and serving binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// ~8 % of Table 2 (seconds).
    Tiny,
    /// ~25 % of Table 2 (tens of seconds).
    Small,
    /// ~50 % of Table 2 — the serving/indexing bench scale.
    Medium,
    /// ~75 % of Table 2 — the second point of the benchmark scale
    /// axis (`BENCH_*.json` records at Medium *and* Large).
    Large,
    /// Table 2 scale (minutes).
    Paper,
}

impl Scale {
    /// Ecosystem config for this scale.
    pub fn config(self, seed: u64) -> EcosystemConfig {
        match self {
            Scale::Tiny => EcosystemConfig::tiny(seed),
            Scale::Small => EcosystemConfig::small(seed),
            Scale::Medium => EcosystemConfig::medium(seed),
            Scale::Large => EcosystemConfig::large(seed),
            Scale::Paper => EcosystemConfig::paper_scale(seed),
        }
    }

    /// Parse from a CLI word.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "tiny" => Some(Scale::Tiny),
            "small" => Some(Scale::Small),
            "medium" => Some(Scale::Medium),
            "large" => Some(Scale::Large),
            "paper" | "full" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// The lowercase word used in CLI flags and BENCH records.
    pub fn word(self) -> &'static str {
        match self {
            Scale::Tiny => "tiny",
            Scale::Small => "small",
            Scale::Medium => "medium",
            Scale::Large => "large",
            Scale::Paper => "paper",
        }
    }
}

/// Everything the analyses need, produced by one pipeline run.
pub struct Pipeline<'e> {
    /// The shared routing simulation.
    pub sim: Sim<'e>,
    /// IRR registries.
    pub irr: std::collections::BTreeMap<Source, IrrDatabase>,
    /// All looking glasses (RS + member).
    pub lgs: Vec<LookingGlassHost>,
    /// Connectivity data.
    pub conn: ConnectivityData,
    /// The community dictionary.
    pub dict: CommunityDictionary,
    /// Archived collector data.
    pub passive: PassiveDataset,
    /// Relationship inference over public paths.
    pub rels: InferredRelationships,
    /// All observations (passive + active).
    pub observations: Vec<Observation>,
    /// Passive-pipeline statistics.
    pub passive_stats: PassiveStats,
    /// Active statistics per IXP.
    pub active_stats: Vec<(IxpId, ActiveStats)>,
    /// The inferred links.
    pub links: MlpLinkSet,
    /// Traceroute dataset (Ark/DIMES stand-in).
    pub traceroute: TracerouteDataset,
    /// PeeringDB.
    pub pdb: PeeringDb,
    /// Geolocation.
    pub geo: GeoDb,
}

/// Run the complete inference pipeline over an ecosystem.
pub fn run_pipeline(eco: &Ecosystem, seed: u64) -> Pipeline<'_> {
    let sim = Sim::new(eco);
    let irr = build_irr(
        eco,
        &IrrConfig {
            seed: seed ^ 0x11,
            ..IrrConfig::default()
        },
    );
    let lgs = build_lg_roster(&sim, seed ^ 0x22, 70, 0.2);
    let conn = gather_connectivity(&sim, &lgs, &irr);
    let dict = dictionary_from_connectivity(eco, &conn);

    // Passive first (it reduces active cost, Eq. 2). One shard per
    // collector; observations stream into a tee of the retained list
    // (the per-figure analyses read it) and the incremental link
    // inferencer, so link state never waits for a materialized batch.
    let passive = build_passive(&sim, &CollectorConfig::paper_like(seed ^ 0x33));
    let public_paths: Vec<Vec<Asn>> = passive
        .collectors
        .iter()
        .flat_map(|(_, a)| a.rib.iter().map(|e| e.attrs.as_path.dedup_prepends()))
        .collect();
    let rels = infer_relationships(&public_paths, &InferConfig::default());
    let (mut sink, passive_stats) = harvest_passive_sharded::<(Vec<Observation>, LinkInferencer)>(
        &passive,
        &dict,
        &conn,
        &rels,
        &PassiveConfig::default(),
    );

    // Active per IXP, streaming into the same tee. The Eq. 2 skip sets
    // (passively-covered members per IXP) come from one pass over the
    // harvest, not one scan per IXP.
    let mut passive_covered: mlpeer::hash::FxHashMap<IxpId, BTreeSet<Asn>> = Default::default();
    for o in sink
        .0
        .iter()
        .filter(|o| o.source == ObservationSource::Passive)
    {
        passive_covered.entry(o.ixp).or_default().insert(o.member);
    }
    let mut active_stats = Vec::new();
    for ixp in &eco.ixps {
        let covered: BTreeSet<Asn> = passive_covered.get(&ixp.id).cloned().unwrap_or_default();
        let rs_lg = lgs
            .iter()
            .find(|l| matches!(l.target, LgTarget::RouteServer(id) if id == ixp.id));
        if let Some(lg) = rs_lg {
            let stats = query_rs_lg(
                &sim,
                lg,
                ixp.id,
                &dict,
                &covered,
                &ActiveConfig::default(),
                &mut sink,
            );
            active_stats.push((ixp.id, stats));
        } else {
            // Third-party member LGs (§4.1 fallback). Candidates: route
            // objects of known members plus passively-seen prefixes.
            let members = conn.rs_members(ixp.id);
            let hosts: Vec<&LookingGlassHost> = lgs
                .iter()
                .filter(|l| match l.target {
                    LgTarget::Member(a) => members.contains(&a),
                    _ => false,
                })
                .take(3)
                .collect();
            let mut candidates: Vec<Prefix> = irr
                .values()
                .flat_map(|db| {
                    db.objects.iter().filter_map(|o| match o {
                        mlpeer_data::irr::RpslObject::Route { prefix, origin, .. }
                            if members.contains(origin) =>
                        {
                            Some(*prefix)
                        }
                        _ => None,
                    })
                })
                .collect();
            candidates.sort_unstable();
            candidates.dedup();
            let stats = query_member_lgs(
                &sim,
                &hosts,
                ixp.id,
                &dict,
                &rels,
                &candidates,
                400,
                &mut sink,
            );
            active_stats.push((ixp.id, stats));
        }
    }

    let (observations, inferencer) = sink;
    let links = inferencer.finalize(&conn);
    let traceroute = build_traceroute(&sim, seed ^ 0x44, 60);
    let pdb = PeeringDb::build(
        eco,
        &PeeringDbConfig {
            seed: seed ^ 0x55,
            ..Default::default()
        },
    );
    let geo = GeoDb::build(eco);

    Pipeline {
        sim,
        irr,
        lgs,
        conn,
        dict,
        passive,
        rels,
        observations,
        passive_stats,
        active_stats,
        links,
        traceroute,
        pdb,
        geo,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_runs_end_to_end_on_tiny() {
        let eco = Ecosystem::generate(EcosystemConfig::tiny(2024));
        let p = run_pipeline(&eco, 2024);
        assert!(!p.observations.is_empty());
        assert!(!p.links.unique_links().is_empty());
        assert!(p.links.per_ixp_total() >= p.links.unique_links().len());
        // Soundness: every inferred link is a ground-truth link.
        let truth = eco.all_ground_truth_links();
        for l in p.links.unique_links() {
            assert!(truth.contains(&l), "false link {l:?}");
        }
    }

    #[test]
    fn inference_recovers_most_mutual_links_at_lg_ixps() {
        let eco = Ecosystem::generate(EcosystemConfig::tiny(2025));
        let p = run_pipeline(&eco, 2025);
        for ixp in &eco.ixps {
            if !ixp.has_lg || ixp.filter_portal {
                continue;
            }
            let mutual = ixp.mutual_links();
            let got = p.links.links_at(ixp.id);
            let hit = mutual.iter().filter(|l| got.contains(l)).count();
            let frac = hit as f64 / mutual.len().max(1) as f64;
            assert!(
                frac > 0.95,
                "{}: recovered only {frac:.2} of mutual links ({hit}/{})",
                ixp.name,
                mutual.len()
            );
        }
    }
}
