//! Live mode, recorded to `BENCH_live.json` with a scale axis
//! (`Scale::Medium` and `Scale::Large`): per-event delta apply vs the
//! full re-harvest a non-incremental refresher would pay.
//!
//! The delta path measured here is the *entire* live loop per event —
//! churn draw, ecosystem mutation, BGP rendering, community decode,
//! incremental link maintenance — not just the inferencer fold.
//! Equality with a from-scratch harvest of the evolved state is
//! asserted before timing anything: a fast-but-divergent incremental
//! path would be measuring the wrong thing.

use criterion::{criterion_group, criterion_main, Criterion};

use mlpeer::live::{decode_message, full_harvest, LiveInferencer};
use mlpeer::{infer_links, report};
use mlpeer_bench::Scale;
use mlpeer_data::churn::{event_messages, ChurnConfig, ChurnGen};
use mlpeer_ixp::Ecosystem;

/// Apply one churn event end to end; returns how many links moved.
fn apply_one(
    eco: &mut Ecosystem,
    gen: &mut ChurnGen,
    li: &mut LiveInferencer,
    clock: u64,
) -> usize {
    let event = gen.next_event(eco);
    eco.apply_churn(&event);
    let ixp = event.ixp();
    let scheme = &eco.ixp(ixp).scheme;
    let mut moved = 0;
    for msg in event_messages(eco, &event, clock) {
        for live_event in decode_message(ixp, scheme, &msg) {
            let d = li.apply(&live_event);
            moved += d.added.len() + d.removed.len();
        }
    }
    moved
}

fn bench_at(c: &mut Criterion, eco_scale: Scale, seed: u64, churn_seed: u64) -> serde_json::Value {
    eprintln!("# generating {eco_scale:?} ecosystem…");
    let mut eco = Ecosystem::generate(eco_scale.config(seed));
    let mut gen = ChurnGen::new(
        &eco,
        ChurnConfig {
            seed: churn_seed,
            ..ChurnConfig::default()
        },
    );
    eprintln!("# bootstrapping live inferencer…");
    let mut li = LiveInferencer::from_ecosystem(&eco);

    // ---- Correctness gate: warm up with churn, then compare against a
    // full recompute of the evolved state. ----
    let mut clock = 0u64;
    for _ in 0..100 {
        apply_one(&mut eco, &mut gen, &mut li, clock);
        clock += 1;
    }
    let (conn, obs) = full_harvest(&eco);
    let expected = infer_links(&conn, &obs);
    assert_eq!(
        report::to_json(li.current()),
        report::to_json(&expected),
        "incremental state must match a from-scratch harvest before timing"
    );

    // ---- Delta path: one full live-loop event per iteration. ----
    let group_name = format!("live_{}", eco_scale.word());
    let mut group = c.benchmark_group(&group_name);
    group.sample_size(10);
    let mut moved_total = 0usize;
    let mut events_benched = 0u64;
    group.bench_function("delta_apply_event", |b| {
        b.iter(|| {
            moved_total += apply_one(&mut eco, &mut gen, &mut li, clock);
            clock += 1;
            events_benched += 1;
            std::hint::black_box(li.event_count())
        })
    });
    group.finish();
    let delta_ns = take_estimate(c);

    // ---- Baseline: what a non-incremental refresher re-runs per
    // change — the full state harvest plus batch inference. ----
    let mut group = c.benchmark_group(&group_name);
    group.sample_size(10);
    group.bench_function("full_reharvest", |b| {
        b.iter(|| {
            let (conn, obs) = full_harvest(&eco);
            std::hint::black_box(infer_links(&conn, &obs).per_ixp_total())
        })
    });
    group.finish();
    let full_ns = take_estimate(c);

    // The evolved state must still agree after all benched events.
    let (conn, obs) = full_harvest(&eco);
    assert_eq!(
        report::to_json(li.current()),
        report::to_json(&infer_links(&conn, &obs)),
        "incremental state diverged during the bench"
    );

    let speedup = full_ns / delta_ns;
    let events_per_sec = 1e9 / delta_ns;
    assert!(
        speedup >= 5.0,
        "delta apply must beat a full re-harvest by ≥5× at {eco_scale:?} \
         (measured {speedup:.1}×)"
    );
    println!(
        "{}: delta {:.1} us/event ({events_per_sec:.0} events/s), full re-harvest {:.1} ms: \
         {speedup:.0}x",
        eco_scale.word(),
        delta_ns / 1e3,
        full_ns / 1e6,
    );

    serde_json::json!({
        "scale": eco_scale.word(),
        "churn_seed": churn_seed,
        "ixps": eco.ixps.len(),
        "rs_members": eco.all_rs_member_asns().len(),
        "unique_links": li.current().unique_links().len(),
        "events_benched": events_benched,
        "links_moved": moved_total,
        "delta_apply_us_per_event": delta_ns / 1e3,
        "events_per_sec": events_per_sec,
        "full_reharvest_ms": full_ns / 1e6,
        "speedup": speedup,
    })
}

fn bench_live_churn(c: &mut Criterion) {
    let seed = 20130501u64;
    let churn_seed = 7u64;
    let results: Vec<serde_json::Value> = [Scale::Medium, Scale::Large]
        .iter()
        .map(|&s| bench_at(c, s, seed, churn_seed))
        .collect();
    let report = serde_json::json!({
        "bench": "live churn: incremental delta apply vs full re-harvest",
        "seed": seed,
        "threads": rayon::current_num_threads(),
        "scales": results,
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_live.json");
    std::fs::write(path, serde_json::to_string_pretty(&report).unwrap())
        .expect("write BENCH_live.json");
    println!("wrote {path}");
}

fn take_estimate(c: &Criterion) -> f64 {
    c.last_estimate_ns().expect("bench just ran")
}

criterion_group!(benches, bench_live_churn);
criterion_main!(benches);
