//! Serial vs sharded passive harvest, recorded to `BENCH_passive.json`
//! (repo root) with a scale axis: `Scale::Small` and `Scale::Large`.
//!
//! The sharded path fans collectors out across threads
//! (`harvest_passive_sharded`); its speedup over the serial fold scales
//! with physical cores, so the JSON records the thread count the run
//! observed alongside the timings. On a single thread the sharded entry
//! point falls back to the serial fold — the floor asserted here is
//! **sharded ≥ 0.98× serial at 1 thread** (the 0.92× regression this
//! fallback fixes). Equality of the two paths' results is asserted
//! before timing — a benchmark that silently diverged from the serial
//! semantics would be measuring the wrong thing.

use criterion::{criterion_group, criterion_main, Criterion};

use mlpeer::connectivity::gather_connectivity;
use mlpeer::dict::dictionary_from_connectivity;
use mlpeer::infer::LinkInferencer;
use mlpeer::passive::{harvest_passive, harvest_passive_sharded, PassiveConfig};
use mlpeer_bench::Scale;
use mlpeer_bgp::Asn;
use mlpeer_data::collector::{build_passive, CollectorConfig};
use mlpeer_data::irr::{build_irr, IrrConfig};
use mlpeer_data::lg::build_lg_roster;
use mlpeer_data::Sim;
use mlpeer_ixp::Ecosystem;
use mlpeer_topo::infer::{infer_relationships, InferConfig};

/// Min-of-3 estimates: the vendored harness reports a mean, and the
/// 1-thread floor below needs shared-core jitter squeezed out.
fn bench_min(c: &mut Criterion, group: &str, id: &str, mut f: impl FnMut() -> usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let mut g = c.benchmark_group(group);
        g.sample_size(10);
        g.bench_function(id, |b| b.iter(|| std::hint::black_box(f())));
        g.finish();
        best = best.min(c.last_estimate_ns().expect("bench just ran"));
    }
    best
}

fn bench_at(c: &mut Criterion, scale: Scale, seed: u64) -> serde_json::Value {
    eprintln!("# building {} dataset…", scale.word());
    let eco = Ecosystem::generate(scale.config(seed));
    let sim = Sim::new(&eco);
    let irr = build_irr(&eco, &IrrConfig::default());
    let lgs = build_lg_roster(&sim, seed ^ 0x22, 70, 0.2);
    let conn = gather_connectivity(&sim, &lgs, &irr);
    let dict = dictionary_from_connectivity(&eco, &conn);
    let passive = build_passive(&sim, &CollectorConfig::paper_like(seed ^ 0x33));
    let public_paths: Vec<Vec<Asn>> = passive
        .collectors
        .iter()
        .flat_map(|(_, a)| a.rib.iter().map(|e| e.attrs.as_path.dedup_prepends()))
        .collect();
    let rels = infer_relationships(&public_paths, &InferConfig::default());
    let cfg = PassiveConfig::default();

    // The benchmark must compare identical work.
    let mut serial = LinkInferencer::default();
    let serial_stats = harvest_passive(&passive, &dict, &conn, &rels, &cfg, &mut serial);
    let (sharded, sharded_stats) =
        harvest_passive_sharded::<LinkInferencer>(&passive, &dict, &conn, &rels, &cfg);
    assert_eq!(
        serial_stats, sharded_stats,
        "sharded stats must merge to serial"
    );
    assert_eq!(
        serial.finalize(&conn),
        sharded.finalize(&conn),
        "sharded inference state must match serial"
    );

    let group = format!("passive_{}", scale.word());
    let threads = rayon::current_num_threads();
    let mut serial_ns = f64::INFINITY;
    let mut sharded_ns = f64::INFINITY;
    // Alternating rounds with retry, like harvest_hot: at 1 thread the
    // two paths are the same code, and the 2% floor must not flake on
    // scheduling jitter.
    for round in 0..4 {
        serial_ns = serial_ns.min(bench_min(c, &group, "harvest_serial", || {
            let mut sink = LinkInferencer::default();
            harvest_passive(&passive, &dict, &conn, &rels, &cfg, &mut sink);
            sink.observation_count()
        }));
        sharded_ns = sharded_ns.min(bench_min(c, &group, "harvest_sharded", || {
            let (sink, _) =
                harvest_passive_sharded::<LinkInferencer>(&passive, &dict, &conn, &rels, &cfg);
            sink.observation_count()
        }));
        if serial_ns / sharded_ns >= 0.98 || threads > 1 {
            break;
        }
        eprintln!("# sharded floor unmet in round {round}, re-measuring…");
    }
    let speedup = serial_ns / sharded_ns;
    if threads == 1 {
        assert!(
            speedup >= 0.98,
            "acceptance: sharded must hold ≥0.98x serial at 1 thread \
             (measured {speedup:.3}x at {})",
            scale.word()
        );
    }
    println!(
        "{}: serial {:.1} ms, sharded {:.1} ms on {threads} thread(s): {speedup:.2}x",
        scale.word(),
        serial_ns / 1e6,
        sharded_ns / 1e6,
    );
    serde_json::json!({
        "scale": scale.word(),
        "collectors": passive.collectors.len(),
        "routes_seen": serial_stats.routes_seen,
        "observations": serial_stats.observations,
        "serial_ms": serial_ns / 1e6,
        "sharded_ms": sharded_ns / 1e6,
        "speedup": speedup,
    })
}

fn bench_passive_sharding(c: &mut Criterion) {
    let seed = 20130501u64;
    let results: Vec<serde_json::Value> = [Scale::Small, Scale::Large]
        .iter()
        .map(|&s| bench_at(c, s, seed))
        .collect();
    let report = serde_json::json!({
        "bench": "harvest_passive serial vs sharded",
        "seed": seed,
        "threads": rayon::current_num_threads(),
        // Process axis: this bench is in-process by construction; the
        // multi-process sweep over the same harvest lives in
        // BENCH_dist.json (benches/dist_load.rs).
        "procs": 1,
        "mlpeer_threads_override": rayon::env_threads(),
        "scales": results,
    });
    // Anchor to the workspace root regardless of the bench's CWD.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_passive.json");
    std::fs::write(path, serde_json::to_string_pretty(&report).unwrap())
        .expect("write BENCH_passive.json");
    println!("wrote {path}");
}

criterion_group!(benches, bench_passive_sharding);
criterion_main!(benches);
