//! Serial vs sharded passive harvest at `Scale::Small`, recorded to
//! `BENCH_passive.json` (repo root when run via `cargo bench`, else the
//! working directory).
//!
//! The sharded path fans collectors out across threads
//! (`harvest_passive_sharded`); its speedup over the serial fold scales
//! with physical cores, so the JSON records the thread count the run
//! observed alongside the timings. Equality of the two paths' results
//! is asserted here too — a benchmark that silently diverged from the
//! serial semantics would be measuring the wrong thing.

use criterion::{criterion_group, criterion_main, Criterion};

use mlpeer::connectivity::gather_connectivity;
use mlpeer::dict::dictionary_from_connectivity;
use mlpeer::infer::LinkInferencer;
use mlpeer::passive::{harvest_passive, harvest_passive_sharded, PassiveConfig};
use mlpeer_bench::Scale;
use mlpeer_bgp::Asn;
use mlpeer_data::collector::{build_passive, CollectorConfig};
use mlpeer_data::irr::{build_irr, IrrConfig};
use mlpeer_data::lg::build_lg_roster;
use mlpeer_data::Sim;
use mlpeer_ixp::Ecosystem;
use mlpeer_topo::infer::{infer_relationships, InferConfig};

fn bench_passive_sharding(c: &mut Criterion) {
    let seed = 20130501u64;
    let eco = Ecosystem::generate(Scale::Small.config(seed));
    let sim = Sim::new(&eco);
    let irr = build_irr(&eco, &IrrConfig::default());
    let lgs = build_lg_roster(&sim, seed ^ 0x22, 70, 0.2);
    let conn = gather_connectivity(&sim, &lgs, &irr);
    let dict = dictionary_from_connectivity(&eco, &conn);
    let passive = build_passive(&sim, &CollectorConfig::paper_like(seed ^ 0x33));
    let public_paths: Vec<Vec<Asn>> = passive
        .collectors
        .iter()
        .flat_map(|(_, a)| a.rib.iter().map(|e| e.attrs.as_path.dedup_prepends()))
        .collect();
    let rels = infer_relationships(&public_paths, &InferConfig::default());
    let cfg = PassiveConfig::default();

    // The benchmark must compare identical work.
    let mut serial = LinkInferencer::default();
    let serial_stats = harvest_passive(&passive, &dict, &conn, &rels, &cfg, &mut serial);
    let (sharded, sharded_stats) =
        harvest_passive_sharded::<LinkInferencer>(&passive, &dict, &conn, &rels, &cfg);
    assert_eq!(
        serial_stats, sharded_stats,
        "sharded stats must merge to serial"
    );
    assert_eq!(
        serial.finalize(&conn),
        sharded.finalize(&conn),
        "sharded inference state must match serial"
    );

    let mut group = c.benchmark_group("passive_small");
    group.sample_size(10);
    group.bench_function("harvest_serial", |b| {
        b.iter(|| {
            let mut sink = LinkInferencer::default();
            harvest_passive(&passive, &dict, &conn, &rels, &cfg, &mut sink);
            std::hint::black_box(sink.observation_count())
        })
    });
    group.finish();
    let serial_ns = take_estimate(c);

    let mut group = c.benchmark_group("passive_small");
    group.sample_size(10);
    group.bench_function("harvest_sharded", |b| {
        b.iter(|| {
            let (sink, _) =
                harvest_passive_sharded::<LinkInferencer>(&passive, &dict, &conn, &rels, &cfg);
            std::hint::black_box(sink.observation_count())
        })
    });
    group.finish();
    let sharded_ns = take_estimate(c);

    let threads = rayon::current_num_threads();
    let speedup = serial_ns / sharded_ns;
    let report = serde_json::json!({
        "bench": "harvest_passive serial vs sharded",
        "scale": "small",
        "seed": seed,
        "collectors": passive.collectors.len(),
        "routes_seen": serial_stats.routes_seen,
        "observations": serial_stats.observations,
        "threads": threads,
        "mlpeer_threads_override": rayon::env_threads(),
        "serial_ms": serial_ns / 1e6,
        "sharded_ms": sharded_ns / 1e6,
        "speedup": speedup,
    });
    // Anchor to the workspace root regardless of the bench's CWD.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_passive.json");
    std::fs::write(path, serde_json::to_string_pretty(&report).unwrap())
        .expect("write BENCH_passive.json");
    println!(
        "serial {:.1} ms, sharded {:.1} ms on {threads} thread(s): {speedup:.2}x → wrote {path}",
        serial_ns / 1e6,
        sharded_ns / 1e6,
    );
}

fn take_estimate(c: &Criterion) -> f64 {
    c.last_estimate_ns().expect("bench just ran")
}

criterion_group!(benches, bench_passive_sharding);
criterion_main!(benches);
