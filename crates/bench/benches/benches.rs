//! Criterion benchmarks: the wire codec, the route-server engine, route
//! propagation, the community dictionary, the §4.3 query planner, and
//! the end-to-end pipeline at two scales.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use mlpeer::active::{query_rs_lg, ActiveConfig};
use mlpeer::connectivity::gather_connectivity;
use mlpeer::dict::dictionary_from_connectivity;
use mlpeer_bench::run_pipeline;
use mlpeer_bgp::update::{BgpMessage, UpdateMessage};
use mlpeer_bgp::{wire, AsPath, Asn};
use mlpeer_data::irr::{build_irr, IrrConfig};
use mlpeer_data::lg::{build_lg_roster, LgTarget};
use mlpeer_data::Sim;
use mlpeer_ixp::{Ecosystem, EcosystemConfig};
use mlpeer_topo::gen::{Internet, InternetConfig};
use mlpeer_topo::propagate::Propagator;

fn bench_wire(c: &mut Criterion) {
    let attrs = mlpeer_bgp::route::RouteAttrs::new(
        "3356 1299 6695 8359 3216".parse::<AsPath>().unwrap(),
        "80.81.192.33".parse().unwrap(),
    )
    .with_communities("0:6695 6695:8359 6695:8447 3356:2001".parse().unwrap());
    let msg = BgpMessage::Update(UpdateMessage::announce(
        attrs,
        vec![
            "193.34.0.0/22".parse().unwrap(),
            "193.34.4.0/24".parse().unwrap(),
        ],
    ));
    let encoded = wire::encode_to_bytes(&msg);
    c.bench_function("wire/encode_update", |b| {
        b.iter(|| wire::encode_to_bytes(std::hint::black_box(&msg)))
    });
    c.bench_function("wire/decode_update", |b| {
        b.iter(|| wire::decode_frame(std::hint::black_box(encoded.clone())).unwrap())
    });
}

fn bench_route_server(c: &mut Criterion) {
    let eco = Ecosystem::generate(EcosystemConfig::tiny(1));
    let decix = eco.ixp_by_name("DE-CIX").unwrap();
    c.bench_function("route_server/build_rib_decix_tiny", |b| {
        b.iter(|| std::hint::black_box(decix.rs_rib().path_count()))
    });
    c.bench_function("route_server/directed_flows_decix_tiny", |b| {
        b.iter(|| std::hint::black_box(decix.directed_flows().len()))
    });
}

fn bench_propagation(c: &mut Criterion) {
    let net = Internet::generate(InternetConfig::tiny(2));
    let prop = Propagator::new(&net.graph);
    let origin = *net.prefixes.keys().next().unwrap();
    c.bench_function("propagate/routes_to_tiny", |b| {
        b.iter(|| std::hint::black_box(prop.routes_to(origin).reachable_count()))
    });
    let eco = Ecosystem::generate(EcosystemConfig::tiny(2));
    let prop2 = Propagator::with_extra_peers(&eco.internet.graph, eco.extra_peer_edges());
    c.bench_function("propagate/routes_to_tiny_with_ixps", |b| {
        b.iter(|| std::hint::black_box(prop2.routes_to(origin).reachable_count()))
    });
}

fn bench_dictionary(c: &mut Criterion) {
    let eco = Ecosystem::generate(EcosystemConfig::tiny(3));
    let sim = Sim::new(&eco);
    let irr = build_irr(&eco, &IrrConfig::default());
    let lgs = build_lg_roster(&sim, 3, 0, 0.0);
    let conn = gather_connectivity(&sim, &lgs, &irr);
    let dict = dictionary_from_connectivity(&eco, &conn);
    let set: mlpeer_bgp::CommunitySet = "0:6695 6695:1000 6695:1013".parse().unwrap();
    c.bench_function("dict/identify_pinned", |b| {
        b.iter(|| std::hint::black_box(dict.identify(&set)))
    });
    let bare: mlpeer_bgp::CommunitySet = "0:1000 0:1013".parse().unwrap();
    c.bench_function("dict/identify_bare_exclude", |b| {
        b.iter(|| std::hint::black_box(dict.identify(&bare)))
    });
}

fn bench_query_planner(c: &mut Criterion) {
    let eco = Ecosystem::generate(EcosystemConfig::tiny(4));
    let sim = Sim::new(&eco);
    let irr = build_irr(&eco, &IrrConfig::default());
    let lgs = build_lg_roster(&sim, 4, 0, 0.0);
    let conn = gather_connectivity(&sim, &lgs, &irr);
    let dict = dictionary_from_connectivity(&eco, &conn);
    let decix = eco.ixp_by_name("DE-CIX").unwrap();
    let lg = lgs
        .iter()
        .find(|l| matches!(l.target, LgTarget::RouteServer(id) if id == decix.id))
        .unwrap();
    c.bench_function("active/query_rs_lg_decix_tiny", |b| {
        b.iter_batched(
            std::collections::BTreeSet::<Asn>::new,
            |skip| {
                let mut sink = mlpeer::CountingSink::default();
                std::hint::black_box(
                    query_rs_lg(
                        &sim,
                        lg,
                        decix.id,
                        &dict,
                        &skip,
                        &ActiveConfig::default(),
                        &mut sink,
                    )
                    .cost(),
                )
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_pipeline(c: &mut Criterion) {
    let eco = Ecosystem::generate(EcosystemConfig::tiny(5));
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.bench_function("end_to_end_tiny", |b| {
        b.iter(|| std::hint::black_box(run_pipeline(&eco, 5).links.unique_links().len()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_wire,
    bench_route_server,
    bench_propagation,
    bench_dictionary,
    bench_query_planner,
    bench_pipeline
);
criterion_main!(benches);
