//! IRR/RPKI cross-validation throughput, recorded to
//! `BENCH_validate.json` at the repo root with a scale axis:
//!
//! 1. **corpus parse** — [`parse_corpus`] over the derived RPSL/ROA
//!    text: registry objects parsed per second. The parser is the
//!    untrusted-input edge of the validation subsystem, so its
//!    throughput bounds how fast a refresh can re-score the fabric.
//! 2. **link scoring** — [`score_links`] over the parsed corpus and
//!    the inferred link set: links scored per second.
//! 3. **end-to-end** — [`validate_harvest`] (derive + parse + scan +
//!    score), the exact pass `Snapshot::of_pipeline` pays per publish.
//!
//! `MLPEER_BENCH_SMOKE=1` switches to `Scale::Small` only, asserts the
//! throughput floors, and skips the JSON write — the CI bench-smoke job
//! runs it that way on every PR. The floors are deliberately loose
//! (shared-core CI noise swings ±20%): they catch an accidental
//! quadratic blowup, not a few-percent regression.

use criterion::{criterion_group, criterion_main, Criterion};

use mlpeer::infer::{LinkInferencer, MlpLinkSet, Observation};
use mlpeer::sink::ObservationSink;
use mlpeer::validate::cross::{
    derive_corpus, parse_corpus, score_links, validate_harvest, CorpusConfig,
};
use mlpeer_bench::Scale;
use mlpeer_ixp::Ecosystem;

/// Observations-per-second floor for the corpus parser in smoke mode.
const PARSE_FLOOR_OBJS_PER_SEC: f64 = 50_000.0;
/// Links-per-second floor for the scoring pass in smoke mode.
const SCORE_FLOOR_LINKS_PER_SEC: f64 = 10_000.0;

/// Run one measurement three times and keep the fastest estimate
/// (same jitter-squeezing idiom as `harvest_hot`).
fn bench_min(c: &mut Criterion, group_name: &str, id: &str, mut f: impl FnMut() -> usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let mut group = c.benchmark_group(group_name);
        group.sample_size(10);
        group.bench_function(id, |b| b.iter(|| std::hint::black_box(f())));
        group.finish();
        best = best.min(c.last_estimate_ns().expect("bench ran"));
    }
    best
}

fn harvest(eco: &Ecosystem) -> (MlpLinkSet, Vec<Observation>) {
    let (conn, observations) = mlpeer::live::full_harvest(eco);
    let mut inferencer = LinkInferencer::default();
    for o in &observations {
        inferencer.push(o.clone());
    }
    (inferencer.finalize(&conn), observations)
}

fn bench_scale(c: &mut Criterion, scale: Scale, seed: u64, smoke: bool) -> serde_json::Value {
    eprintln!("# building {} validation inputs…", scale.word());
    let eco = Ecosystem::generate(scale.config(seed));
    let (links, observations) = harvest(&eco);
    let cfg = CorpusConfig::seeded(seed);
    let text = derive_corpus(&eco, &cfg);
    let corpus = parse_corpus(&text);
    assert!(
        !corpus.stats.degraded(),
        "the derived corpus must parse clean before timing it"
    );
    let announcements = mlpeer::index::scan::announcements(&links, &observations);
    let links_total: u64 = links.per_ixp.values().map(|s| s.len() as u64).sum();
    let group_name = format!("validate_load_{}", scale.word());
    eprintln!(
        "# {}: {} corpus bytes, {} objects, {} roas, {} links",
        scale.word(),
        text.len(),
        corpus.stats.objects,
        corpus.stats.roas,
        links_total,
    );

    // ---- 1. corpus parse. ----
    let parse_ns = bench_min(c, &group_name, "parse_corpus", || {
        parse_corpus(&text).stats.objects as usize
    });
    let objects_per_sec = corpus.stats.objects as f64 / (parse_ns / 1e9);

    // ---- 2. link scoring. ----
    let score_ns = bench_min(c, &group_name, "score_links", || {
        score_links(&corpus, &links, &announcements)
            .0
            .totals
            .total() as usize
    });
    let links_per_sec = links_total as f64 / (score_ns / 1e9);

    // ---- 3. end-to-end (what a publish pays). ----
    let e2e_ns = bench_min(c, &group_name, "validate_harvest", || {
        validate_harvest(&eco, &links, &observations, &cfg)
            .totals
            .total() as usize
    });

    if smoke {
        assert!(
            objects_per_sec >= PARSE_FLOOR_OBJS_PER_SEC,
            "acceptance: corpus parse must sustain ≥{PARSE_FLOOR_OBJS_PER_SEC} \
             objects/s at {} (measured {objects_per_sec:.0})",
            scale.word()
        );
        assert!(
            links_per_sec >= SCORE_FLOOR_LINKS_PER_SEC,
            "acceptance: link scoring must sustain ≥{SCORE_FLOOR_LINKS_PER_SEC} \
             links/s at {} (measured {links_per_sec:.0})",
            scale.word()
        );
    }

    println!(
        "{}: parse {:.2} ms ({objects_per_sec:.0} objects/s); \
         score {:.2} ms ({links_per_sec:.0} links/s); \
         end-to-end {:.2} ms",
        scale.word(),
        parse_ns / 1e6,
        score_ns / 1e6,
        e2e_ns / 1e6,
    );

    serde_json::json!({
        "scale": scale.word(),
        "corpus_bytes": text.len(),
        "objects": corpus.stats.objects,
        "roas": corpus.stats.roas,
        "links": links_total,
        "parse": serde_json::json!({
            "ms": parse_ns / 1e6,
            "objects_per_sec": objects_per_sec,
        }),
        "score": serde_json::json!({
            "ms": score_ns / 1e6,
            "links_per_sec": links_per_sec,
        }),
        "end_to_end_ms": e2e_ns / 1e6,
    })
}

fn bench_validate_load(c: &mut Criterion) {
    let seed = 20130501u64;
    let smoke = std::env::var("MLPEER_BENCH_SMOKE").is_ok();
    let scales: &[Scale] = if smoke {
        &[Scale::Small]
    } else {
        &[Scale::Small, Scale::Medium, Scale::Large]
    };
    let mut results = Vec::new();
    for &scale in scales {
        results.push(bench_scale(c, scale, seed, smoke));
    }
    if smoke {
        println!("smoke mode: floors asserted, BENCH_validate.json left untouched");
        return;
    }
    let report = serde_json::json!({
        "bench": "IRR/RPKI cross-validation: corpus parse, link scoring, end-to-end validate_harvest",
        "seed": seed,
        "scales": results,
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_validate.json");
    std::fs::write(path, serde_json::to_string_pretty(&report).unwrap())
        .expect("write BENCH_validate.json");
    println!("wrote {path}");
}

criterion_group!(benches, bench_validate_load);
criterion_main!(benches);
