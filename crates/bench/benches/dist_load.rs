//! Multi-process passive harvest, recorded to `BENCH_dist.json` (repo
//! root) with a **procs** axis: `workers ∈ {1, 2, 4}` at `Scale::Small`
//! and `Scale::Large`.
//!
//! Two baselines are timed per scale. `serial_ms` is the warm in-process
//! harvest over an already-built dataset — the number the `procs: 1`
//! floor is held against (that configuration short-circuits to the
//! thread-sharded fold, so it must stay ≥ 1.0x serial within a 2 %
//! measurement tolerance, mirroring `passive_sharding`'s floor).
//! `cold_ms` is dataset build + harvest, which is the honest comparand
//! for `procs > 1`: each worker process regenerates its dataset from
//! `(scale, seed)` — that is what makes the wire format compact and the
//! workers stateless — so one worker's end-to-end cost is ≈ `cold_ms`,
//! and a `k`-worker run on one core degenerates to ≈ `k × cold_ms`.
//! The multi-core assertion, made only when more than one CPU is
//! detected, is therefore an *overlap* floor: for `k ≤ cpus`, the
//! distributed wall must stay ≤ 0.75 × k × cold — workers genuinely
//! ran concurrently instead of serializing. On a 1-core container the
//! per-procs numbers are recorded as-is (and show the expected k×
//! degeneration, which is itself the honest datum ROADMAP asked for).
//!
//! Result equality against the serial fold is asserted before any
//! timing, per the repo's bench convention. `MLPEER_BENCH_SMOKE=1`
//! runs `Scale::Small` only, asserts the floors, and leaves
//! `BENCH_dist.json` untouched.

use std::time::Instant;

use mlpeer::passive::{harvest_passive, PassiveConfig};
use mlpeer::pipeline::{prepare, TeeSink};
use mlpeer_bench::Scale;
use mlpeer_dist::{default_worker_cmd, harvest_passive_dist, DistConfig, DistStats};
use mlpeer_ixp::Ecosystem;

/// Minimum over `rounds` wall-clock measurements, in nanoseconds.
fn time_min<T>(rounds: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_nanos() as f64);
    }
    best
}

fn dist_cfg(procs: usize) -> DistConfig {
    DistConfig {
        workers: procs,
        worker_cmd: default_worker_cmd(),
        // A Large worker's cold build+harvest runs ~32 s alone and k×
        // that when k workers contend for one core; the default 60 s
        // deadline would time every shard out and record the timeout
        // constant instead of the fleet. The bench is not measuring
        // fault handling, so give workers all the time they need.
        timeout: std::time::Duration::from_secs(600),
        ..DistConfig::new(procs)
    }
}

fn bench_scale(scale: Scale, seed: u64, cpus: usize) -> serde_json::Value {
    eprintln!("# building {} dataset…", scale.word());
    let eco = Ecosystem::generate(scale.config(seed));
    let prep = prepare(&eco, seed);
    let cfg = PassiveConfig::default();

    // Equality before timing, at every worker count on the axis: the
    // distributed fold must be byte-identical to the serial one.
    let mut serial: TeeSink = Default::default();
    let serial_stats = harvest_passive(
        &prep.passive,
        &prep.dict,
        &prep.conn,
        &prep.rels,
        &cfg,
        &mut serial,
    );
    let serial_links = serial.1.finalize(&prep.conn);
    let procs_axis = [1usize, 2, 4];
    for &procs in &procs_axis {
        let stats = DistStats::new(procs as u64);
        let (sink, dist_stats) =
            harvest_passive_dist(scale.word(), seed, &prep, &dist_cfg(procs), &stats);
        assert_eq!(dist_stats, serial_stats, "{procs} procs: stats diverged");
        assert_eq!(sink.0, serial.0, "{procs} procs: observations diverged");
        assert_eq!(
            sink.1.finalize(&prep.conn),
            serial_links,
            "{procs} procs: links diverged"
        );
    }

    // Warm in-process baseline, and the cold build+harvest baseline the
    // multi-process runs are honestly compared against.
    let serial_ns = time_min(5, || {
        let mut sink: TeeSink = Default::default();
        harvest_passive(
            &prep.passive,
            &prep.dict,
            &prep.conn,
            &prep.rels,
            &cfg,
            &mut sink,
        );
        sink.0.len()
    });
    let cold_ns = time_min(3, || {
        let eco = Ecosystem::generate(scale.config(seed));
        let prep = prepare(&eco, seed);
        let mut sink: TeeSink = Default::default();
        harvest_passive(
            &prep.passive,
            &prep.dict,
            &prep.conn,
            &prep.rels,
            &cfg,
            &mut sink,
        );
        sink.0.len()
    });

    let workers_available = default_worker_cmd().is_some();
    let mut entries = Vec::new();
    let mut overlap = Vec::new(); // (procs, wall_ns) for procs > 1
    let mut dist1_ns = f64::INFINITY;
    for &procs in &procs_axis {
        let stats = DistStats::new(procs as u64);
        let ns = time_min(3, || {
            let (sink, _) =
                harvest_passive_dist(scale.word(), seed, &prep, &dist_cfg(procs), &stats);
            sink.0.len()
        });
        if procs == 1 {
            dist1_ns = ns;
        } else {
            overlap.push((procs, ns));
        }
        let snap = stats.snapshot();
        println!(
            "{} @ {procs} procs: {:.1} ms (serial {:.1} ms warm, {:.1} ms cold; \
             spawned {}, degraded {})",
            scale.word(),
            ns / 1e6,
            serial_ns / 1e6,
            cold_ns / 1e6,
            snap.spawned,
            snap.degraded,
        );
        entries.push(serde_json::json!({
            "procs": procs,
            "dist_ms": ns / 1e6,
            "speedup_vs_warm_serial": serial_ns / ns,
            "speedup_vs_cold_serial": cold_ns / ns,
            "spawned": snap.spawned,
            "degraded": snap.degraded,
            "frames": snap.frames,
            "bytes": snap.bytes,
        }));
    }

    // Floor: procs=1 is the in-process sharded fold — it must not
    // regress below serial (2% tolerance). Alternating re-measurement
    // rounds squeeze out shared-core jitter, as in passive_sharding.
    let mut floor = serial_ns / dist1_ns;
    for round in 0..4 {
        if floor >= 0.98 {
            break;
        }
        eprintln!("# procs=1 floor unmet in round {round} ({floor:.3}x), re-measuring…");
        let retry_serial = time_min(5, || {
            let mut sink: TeeSink = Default::default();
            harvest_passive(
                &prep.passive,
                &prep.dict,
                &prep.conn,
                &prep.rels,
                &cfg,
                &mut sink,
            );
            sink.0.len()
        });
        let retry_dist = time_min(5, || {
            let stats = DistStats::new(1);
            let (sink, _) = harvest_passive_dist(scale.word(), seed, &prep, &dist_cfg(1), &stats);
            sink.0.len()
        });
        floor = floor.max(retry_serial / retry_dist);
    }
    assert!(
        floor >= 0.98,
        "acceptance: procs=1 must hold ≥1.0x serial (2% tolerance), got {floor:.3}x at {}",
        scale.word()
    );
    // Multi-core overlap floor: only assertable with real parallelism
    // and a spawnable worker binary. A k-worker run whose workers truly
    // overlap costs ≈ one worker's end-to-end time (≈ cold), far under
    // the k × cold a serialized fleet degenerates to.
    if cpus > 1 && workers_available {
        for &(procs, ns) in overlap.iter().filter(|&&(p, _)| p <= cpus) {
            let bound = 0.75 * procs as f64 * cold_ns;
            assert!(
                ns <= bound,
                "acceptance: with {cpus} CPUs, {procs} workers must overlap \
                 (wall {:.0} ms > 0.75 × {procs} × cold {:.0} ms) at {}",
                ns / 1e6,
                cold_ns / 1e6,
                scale.word()
            );
        }
    }

    serde_json::json!({
        "scale": scale.word(),
        "routes_seen": serial_stats.routes_seen,
        "observations": serial_stats.observations,
        "serial_ms": serial_ns / 1e6,
        "cold_ms": cold_ns / 1e6,
        "workers_available": workers_available,
        "procs": entries,
    })
}

fn main() {
    let seed = 20130501u64;
    let smoke = std::env::var("MLPEER_BENCH_SMOKE").is_ok();
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let scales: &[Scale] = if smoke {
        &[Scale::Small]
    } else {
        &[Scale::Small, Scale::Large]
    };
    let results: Vec<serde_json::Value> =
        scales.iter().map(|&s| bench_scale(s, seed, cpus)).collect();
    if smoke {
        println!("smoke mode: floors asserted, BENCH_dist.json left untouched");
        return;
    }
    let report = serde_json::json!({
        "bench": "multi-process passive harvest: serial vs worker processes",
        "seed": seed,
        "cpus": cpus,
        "threads": rayon::current_num_threads(),
        "scales": results,
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_dist.json");
    std::fs::write(path, serde_json::to_string_pretty(&report).unwrap())
        .expect("write BENCH_dist.json");
    println!("wrote {path}");
}
