//! The columnar hot path, recorded to `BENCH_hot.json` at the repo
//! root with a **scale axis** (`Scale::Medium` and `Scale::Large`):
//!
//! 1. **struct vs view decode+infer** — the batch path's hot loop as a
//!    collector actually feeds it: wire bytes in, link-inference state
//!    out. The struct lane pays `MrtArchive::decode` (heap structs per
//!    route) then `harvest_passive`; the view lane pays `MrtBytes::new`
//!    (one validation pass) then `harvest_passive_bytes` (zero-copy
//!    views + scratch reuse). Byte-identical results are asserted
//!    before timing; the acceptance floor is **≥ 2×**.
//! 2. **baseline vs interned inference** — folding the materialized
//!    observation stream through the pre-interning inferencer shape
//!    (wide `(IxpId, Asn)` / `Prefix` hash keys, reproduced locally
//!    below) against today's log-structured dense-id
//!    [`LinkInferencer`], which memoizes the per-run intern resolution
//!    and appends to a flat key/action log instead of probing hash
//!    tables per observation. The acceptance floor is **≥ 1.1×**.
//! 3. **serial vs sharded harvest** — with the 1-thread serial
//!    fallback in place, sharded must hold **≥ 0.98×** serial on one
//!    thread (the BENCH_passive regression this PR fixes).
//!
//! `MLPEER_BENCH_SMOKE=1` switches to `Scale::Small` only and skips the
//! JSON write — the CI bench-smoke job uses it to keep the ≥2× floor
//! enforced on every PR without re-recording checked-in numbers.

use std::collections::{BTreeMap, BTreeSet};

use criterion::{criterion_group, criterion_main, Criterion};

use mlpeer::connectivity::{gather_connectivity, ConnectivityData};
use mlpeer::dict::{dictionary_from_connectivity, CommunityDictionary};
use mlpeer::hash::{FxHashMap, FxHashSet};
use mlpeer::infer::{LinkInferencer, MlpLinkSet, Observation};
use mlpeer::passive::{
    harvest_passive, harvest_passive_bytes, harvest_passive_sharded, PassiveConfig,
};
use mlpeer::sink::ObservationSink;
use mlpeer_bench::Scale;
use mlpeer_bgp::mrt::MrtArchive;
use mlpeer_bgp::view::MrtBytes;
use mlpeer_bgp::{Asn, Prefix};
use mlpeer_data::collector::{build_passive, CollectorConfig, PassiveBytes, PassiveDataset};
use mlpeer_data::irr::{build_irr, IrrConfig};
use mlpeer_data::lg::build_lg_roster;
use mlpeer_data::Sim;
use mlpeer_ixp::ixp::IxpId;
use mlpeer_ixp::policy::ExportPolicy;
use mlpeer_ixp::scheme::RsAction;
use mlpeer_ixp::Ecosystem;
use mlpeer_topo::infer::{infer_relationships, InferConfig, InferredRelationships};

/// The pre-interning inferencer shape, kept verbatim as the benchmark
/// baseline: wide hash keys everywhere a dense id sits today.
#[derive(Default)]
struct BaselineInferencer {
    reach: FxHashMap<(IxpId, Asn), FxHashMap<Prefix, BaselineAcc>>,
    observations: usize,
}

#[derive(Default, Clone)]
struct BaselineAcc {
    saw_none: bool,
    includes: BTreeSet<Asn>,
    excludes: BTreeSet<Asn>,
}

impl BaselineAcc {
    fn policy(&self) -> ExportPolicy {
        if self.saw_none {
            if self.includes.is_empty() {
                ExportPolicy::Nobody
            } else {
                ExportPolicy::OnlyTo(self.includes.clone())
            }
        } else if !self.excludes.is_empty() {
            ExportPolicy::AllExcept(self.excludes.clone())
        } else {
            ExportPolicy::AllMembers
        }
    }
}

impl BaselineInferencer {
    fn push(&mut self, obs: Observation) {
        let acc = self
            .reach
            .entry((obs.ixp, obs.member))
            .or_default()
            .entry(obs.prefix)
            .or_default();
        for action in obs.actions {
            match action {
                RsAction::All => {}
                RsAction::None => acc.saw_none = true,
                RsAction::Include(m) => {
                    acc.includes.insert(m);
                }
                RsAction::Exclude(m) => {
                    acc.excludes.insert(m);
                }
            }
        }
        self.observations += 1;
    }

    fn finalize(&self, conn: &ConnectivityData) -> MlpLinkSet {
        let mut out = MlpLinkSet::default();
        let mut members_at: FxHashMap<IxpId, BTreeSet<Asn>> = FxHashMap::default();
        let mut reach: BTreeMap<IxpId, BTreeMap<Asn, FxHashSet<Asn>>> = BTreeMap::new();
        for ((ixp, member), prefixes) in &self.reach {
            let members = members_at
                .entry(*ixp)
                .or_insert_with(|| conn.rs_members(*ixp));
            if !members.contains(member) {
                continue;
            }
            let mut na: Option<FxHashSet<Asn>> = None;
            let mut default_policy: Option<(Prefix, ExportPolicy)> = None;
            for (prefix, acc) in prefixes {
                let policy = acc.policy();
                let nap: FxHashSet<Asn> = members
                    .iter()
                    .copied()
                    .filter(|&m| m != *member && policy.allows(m))
                    .collect();
                na = Some(match na.take() {
                    None => nap,
                    Some(prev) => prev.intersection(&nap).copied().collect(),
                });
                match &default_policy {
                    Some((first, _)) if first <= prefix => {}
                    _ => default_policy = Some((*prefix, policy)),
                }
            }
            let na = na.unwrap_or_default();
            reach.entry(*ixp).or_default().insert(*member, na);
            out.covered.entry(*ixp).or_default().insert(*member);
            if let Some((_, p)) = default_policy {
                out.policies.insert((*ixp, *member), p);
            }
        }
        for (ixp, members) in &reach {
            let links = out.per_ixp.entry(*ixp).or_default();
            let asns: Vec<Asn> = members.keys().copied().collect();
            for (i, &a) in asns.iter().enumerate() {
                for &b in &asns[i + 1..] {
                    if members[&a].contains(&b) && members[&b].contains(&a) {
                        links.insert((a, b));
                    }
                }
            }
        }
        out
    }
}

struct ScaleInputs {
    dict: CommunityDictionary,
    conn: ConnectivityData,
    rels: InferredRelationships,
    dataset: PassiveDataset,
    /// The raw wire form each collector actually serves.
    encoded: Vec<(String, bytes::Bytes)>,
}

fn build_inputs(scale: Scale, seed: u64) -> ScaleInputs {
    eprintln!("# building {} dataset…", scale.word());
    let eco = Ecosystem::generate(scale.config(seed));
    let sim = Sim::new(&eco);
    let irr = build_irr(&eco, &IrrConfig::default());
    let lgs = build_lg_roster(&sim, seed ^ 0x22, 70, 0.2);
    let conn = gather_connectivity(&sim, &lgs, &irr);
    let dict = dictionary_from_connectivity(&eco, &conn);
    let dataset = build_passive(&sim, &CollectorConfig::paper_like(seed ^ 0x33));
    let public_paths: Vec<Vec<Asn>> = dataset
        .collectors
        .iter()
        .flat_map(|(_, a)| a.rib.iter().map(|e| e.attrs.as_path.dedup_prepends()))
        .collect();
    let rels = infer_relationships(&public_paths, &InferConfig::default());
    let encoded = dataset
        .collectors
        .iter()
        .map(|(name, a)| (name.clone(), a.encode()))
        .collect();
    ScaleInputs {
        dict,
        conn,
        rels,
        dataset,
        encoded,
    }
}

/// The struct lane: decode wire bytes into heap archives, then harvest.
fn struct_decode_infer(inputs: &ScaleInputs, cfg: &PassiveConfig) -> usize {
    let dataset = PassiveDataset {
        collectors: inputs
            .encoded
            .iter()
            .map(|(name, bytes)| {
                (
                    name.clone(),
                    MrtArchive::decode(bytes.clone()).expect("valid archive"),
                )
            })
            .collect(),
        vps: Vec::new(),
    };
    let mut sink = LinkInferencer::default();
    harvest_passive(
        &dataset,
        &inputs.dict,
        &inputs.conn,
        &inputs.rels,
        cfg,
        &mut sink,
    );
    sink.observation_count()
}

/// The view lane: validate the same bytes once, harvest through
/// zero-copy cursors.
fn view_decode_infer(inputs: &ScaleInputs, cfg: &PassiveConfig) -> usize {
    let bytes = PassiveBytes {
        collectors: inputs
            .encoded
            .iter()
            .map(|(name, b)| {
                (
                    name.clone(),
                    MrtBytes::new(b.clone()).expect("valid archive"),
                )
            })
            .collect(),
    };
    let mut sink = LinkInferencer::default();
    harvest_passive_bytes(
        &bytes,
        &inputs.dict,
        &inputs.conn,
        &inputs.rels,
        cfg,
        &mut sink,
    );
    sink.observation_count()
}

/// Run one measurement three times and keep the fastest estimate: the
/// vendored harness reports a mean, and on a shared 1-core container
/// the floor assertions below need jitter squeezed out.
fn bench_min(c: &mut Criterion, group_name: &str, id: &str, mut f: impl FnMut() -> usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let mut group = c.benchmark_group(group_name);
        group.sample_size(10);
        group.bench_function(id, |b| b.iter(|| std::hint::black_box(f())));
        group.finish();
        best = best.min(c.last_estimate_ns().expect("bench ran"));
    }
    best
}

fn bench_scale(c: &mut Criterion, scale: Scale, seed: u64) -> serde_json::Value {
    let inputs = build_inputs(scale, seed);
    let cfg = PassiveConfig::default();
    let group_name = format!("harvest_hot_{}", scale.word());

    // ---- Correctness gate: the two lanes must be byte-identical. ----
    let mut struct_sink: (Vec<Observation>, LinkInferencer) = Default::default();
    let struct_stats = harvest_passive(
        &inputs.dataset,
        &inputs.dict,
        &inputs.conn,
        &inputs.rels,
        &cfg,
        &mut struct_sink,
    );
    let bytes = inputs.dataset.to_bytes();
    let mut view_sink: (Vec<Observation>, LinkInferencer) = Default::default();
    let view_stats = harvest_passive_bytes(
        &bytes,
        &inputs.dict,
        &inputs.conn,
        &inputs.rels,
        &cfg,
        &mut view_sink,
    );
    assert_eq!(view_stats, struct_stats, "view stats must match struct");
    assert_eq!(view_sink.0, struct_sink.0, "view observations must match");
    assert_eq!(
        view_sink.1.finalize(&inputs.conn),
        struct_sink.1.finalize(&inputs.conn),
        "view inference state must match"
    );
    let observations = struct_sink.0;
    eprintln!(
        "# {}: {} rib records, {} updates, {} observations",
        scale.word(),
        inputs.dataset.rib_len(),
        inputs.dataset.update_len(),
        observations.len()
    );

    // ---- 1. struct vs view decode+infer. ----
    let struct_ns = bench_min(c, &group_name, "struct_decode_infer", || {
        struct_decode_infer(&inputs, &cfg)
    });
    let view_ns = bench_min(c, &group_name, "view_decode_infer", || {
        view_decode_infer(&inputs, &cfg)
    });
    let decode_speedup = struct_ns / view_ns;
    assert!(
        decode_speedup >= 2.0,
        "acceptance: the view lane must be ≥2x the struct lane on the \
         decode+infer loop at {} (measured {decode_speedup:.2}x)",
        scale.word()
    );

    // ---- 2. baseline (wide-key) vs interned inference fold. ----
    let mut baseline = BaselineInferencer::default();
    for o in &observations {
        baseline.push(o.clone());
    }
    let mut interned = LinkInferencer::default();
    for o in &observations {
        interned.push(o.clone());
    }
    assert_eq!(
        baseline.finalize(&inputs.conn),
        interned.finalize(&inputs.conn),
        "the baseline shape must reproduce today's links exactly"
    );
    // Fold-only on both sides (finalize is shared code and would
    // drown the structural difference); identical ownership — both
    // lanes consume clones.
    let baseline_ns = bench_min(c, &group_name, "infer_fold_wide_keys", || {
        let mut sink = BaselineInferencer::default();
        for o in &observations {
            sink.push(o.clone());
        }
        std::hint::black_box(sink.observations)
    });
    let interned_ns = bench_min(c, &group_name, "infer_fold_interned", || {
        let mut sink = LinkInferencer::default();
        for o in &observations {
            sink.push(o.clone());
        }
        std::hint::black_box(sink.observation_count())
    });
    let infer_speedup = baseline_ns / interned_ns;
    assert!(
        infer_speedup >= 1.1,
        "acceptance: the log-structured interned fold must beat the \
         wide-key shape ≥1.1x at {} (measured {infer_speedup:.2}x)",
        scale.word()
    );

    // ---- 3. serial vs sharded (the 1-thread fallback floor). ----
    // Measured in alternating rounds, keeping each side's minimum: on
    // a shared core, back-to-back scheduling jitter between the two
    // otherwise-identical 1-thread code paths would dominate the 2%
    // tolerance. Extra rounds run only while the floor is unmet, so a
    // real regression still fails after the retry budget.
    let threads = rayon::current_num_threads();
    let mut serial_ns = f64::INFINITY;
    let mut sharded_ns = f64::INFINITY;
    for round in 0..4 {
        serial_ns = serial_ns.min(bench_min(c, &group_name, "harvest_serial", || {
            let mut sink = LinkInferencer::default();
            harvest_passive(
                &inputs.dataset,
                &inputs.dict,
                &inputs.conn,
                &inputs.rels,
                &cfg,
                &mut sink,
            );
            sink.observation_count()
        }));
        sharded_ns = sharded_ns.min(bench_min(c, &group_name, "harvest_sharded", || {
            let (sink, _) = harvest_passive_sharded::<LinkInferencer>(
                &inputs.dataset,
                &inputs.dict,
                &inputs.conn,
                &inputs.rels,
                &cfg,
            );
            sink.observation_count()
        }));
        if serial_ns / sharded_ns >= 0.98 || threads > 1 {
            break;
        }
        eprintln!("# sharded floor unmet in round {round}, re-measuring…");
    }
    let sharded_ratio = serial_ns / sharded_ns;
    if threads == 1 {
        assert!(
            sharded_ratio >= 0.98,
            "acceptance: with the serial fallback, sharded must hold \
             ≥0.98x serial at 1 thread (measured {sharded_ratio:.3}x)"
        );
    }

    println!(
        "{}: decode+infer struct {:.1} ms / view {:.1} ms = {decode_speedup:.2}x; \
         infer wide {:.1} ms / interned {:.1} ms = {infer_speedup:.2}x; \
         sharded/serial {sharded_ratio:.2}x on {threads} thread(s)",
        scale.word(),
        struct_ns / 1e6,
        view_ns / 1e6,
        baseline_ns / 1e6,
        interned_ns / 1e6,
    );

    serde_json::json!({
        "scale": scale.word(),
        "rib_records": inputs.dataset.rib_len(),
        "update_records": inputs.dataset.update_len(),
        "wire_bytes": bytes.byte_len(),
        "observations": observations.len(),
        "routes_seen": struct_stats.routes_seen,
        "decode_infer": serde_json::json!({
            "struct_ms": struct_ns / 1e6,
            "view_ms": view_ns / 1e6,
            "speedup": decode_speedup,
        }),
        "inference_fold": serde_json::json!({
            "wide_key_ms": baseline_ns / 1e6,
            "interned_ms": interned_ns / 1e6,
            "speedup": infer_speedup,
        }),
        "sharding": serde_json::json!({
            "serial_ms": serial_ns / 1e6,
            "sharded_ms": sharded_ns / 1e6,
            "sharded_over_serial": sharded_ratio,
        }),
    })
}

fn bench_harvest_hot(c: &mut Criterion) {
    let seed = 20130501u64;
    let smoke = std::env::var("MLPEER_BENCH_SMOKE").is_ok();
    let scales: &[Scale] = if smoke {
        &[Scale::Small]
    } else {
        &[Scale::Medium, Scale::Large]
    };
    let mut results = Vec::new();
    for &scale in scales {
        results.push(bench_scale(c, scale, seed));
    }
    if smoke {
        println!("smoke mode: floors asserted, BENCH_hot.json left untouched");
        return;
    }
    let report = serde_json::json!({
        "bench": "columnar hot path: struct vs view decode+infer, wide-key vs interned fold, serial vs sharded",
        "seed": seed,
        "threads": rayon::current_num_threads(),
        "mlpeer_threads_override": rayon::env_threads(),
        "scales": results,
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hot.json");
    std::fs::write(path, serde_json::to_string_pretty(&report).unwrap())
        .expect("write BENCH_hot.json");
    println!("wrote {path}");
}

criterion_group!(benches, bench_harvest_hot);
criterion_main!(benches);
