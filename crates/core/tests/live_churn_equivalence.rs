//! The live-mode correctness anchor, property-tested over random churn
//! schedules: after ANY event sequence, the incrementally-maintained
//! link set is byte-identical (same deterministic JSON) to a
//! from-scratch harvest of the final ecosystem state, and the reported
//! deltas compose exactly from one checkpoint to the next.
//!
//! The full loop under test is the real live path, end to end:
//! churn event → ecosystem mutation → BGP rendering (OPEN / UPDATE
//! with community-encoded filters / NOTIFICATION) → community decode →
//! incremental apply. Nothing is short-circuited.

use std::collections::BTreeSet;

use mlpeer::live::{decode_message, full_harvest, LiveInferencer};
use mlpeer::{infer_links, report};
use mlpeer_bgp::Asn;
use mlpeer_data::churn::{event_messages, ChurnConfig, ChurnGen};
use mlpeer_ixp::ixp::IxpId;
use mlpeer_ixp::{Ecosystem, EcosystemConfig};

/// Flatten a link set for delta-composition checks.
fn flat(links: &mlpeer::MlpLinkSet) -> BTreeSet<(IxpId, Asn, Asn)> {
    links
        .per_ixp
        .iter()
        .flat_map(|(ixp, set)| set.iter().map(move |&(a, b)| (*ixp, a, b)))
        .collect()
}

fn run_schedule(eco_seed: u64, churn_seed: u64, events: usize, checkpoint_every: usize) {
    let mut eco = Ecosystem::generate(EcosystemConfig::tiny(eco_seed));
    let mut gen = ChurnGen::new(
        &eco,
        ChurnConfig {
            seed: churn_seed,
            ..ChurnConfig::default()
        },
    );
    let mut li = LiveInferencer::from_ecosystem(&eco);

    // Delta mirror: applying every reported delta to the bootstrap
    // links must track the maintained set exactly.
    let mut mirror = flat(li.current());
    let mut deltas_seen = 0usize;

    for step in 0..events {
        let event = gen.next_event(&eco);
        assert!(eco.apply_churn(&event), "step {step}: invalid {event:?}");
        let ixp = event.ixp();
        let scheme = &eco.ixp(ixp).scheme;
        for msg in event_messages(&eco, &event, step as u64) {
            for live_event in decode_message(ixp, scheme, &msg) {
                let delta = li.apply(&live_event);
                deltas_seen += delta.added.len() + delta.removed.len();
                for l in &delta.removed {
                    assert!(mirror.remove(l), "step {step}: removed absent link {l:?}");
                }
                for l in &delta.added {
                    assert!(mirror.insert(*l), "step {step}: re-added link {l:?}");
                }
            }
        }

        if (step + 1) % checkpoint_every == 0 || step + 1 == events {
            let (conn, obs) = full_harvest(&eco);
            let expected = infer_links(&conn, &obs);
            assert_eq!(
                report::to_json(li.current()),
                report::to_json(&expected),
                "step {step}: incremental state diverged from a \
                 from-scratch harvest of the final state"
            );
            assert_eq!(
                mirror,
                flat(li.current()),
                "step {step}: deltas do not compose to the current set"
            );
        }
    }
    assert!(
        deltas_seen > 0,
        "a {events}-event schedule must move at least one link"
    );
}

#[test]
fn incremental_matches_full_recompute_over_random_churn() {
    // Several (ecosystem, schedule) draws; checkpoints along the way
    // catch divergence early, the final checkpoint is the criterion.
    run_schedule(2024, 1, 300, 50);
    run_schedule(2025, 2, 300, 50);
    run_schedule(7, 3, 150, 25);
}

#[test]
fn churn_heavy_on_membership() {
    // A join/leave-dominated schedule stresses retraction and
    // session-reset semantics.
    let mut eco = Ecosystem::generate(EcosystemConfig::tiny(99));
    let mut gen = ChurnGen::new(
        &eco,
        ChurnConfig {
            seed: 9,
            w_join: 5,
            w_leave: 5,
            w_policy: 1,
            w_originate: 1,
            w_withdraw: 1,
            ..ChurnConfig::default()
        },
    );
    let mut li = LiveInferencer::from_ecosystem(&eco);
    for step in 0..200 {
        let event = gen.next_event(&eco);
        assert!(eco.apply_churn(&event));
        let ixp = event.ixp();
        let scheme = &eco.ixp(ixp).scheme;
        for msg in event_messages(&eco, &event, step as u64) {
            for live_event in decode_message(ixp, scheme, &msg) {
                li.apply(&live_event);
            }
        }
    }
    let (conn, obs) = full_harvest(&eco);
    let expected = infer_links(&conn, &obs);
    assert_eq!(
        report::to_json(li.current()),
        report::to_json(&expected),
        "membership-churn-heavy schedule diverged"
    );
}
