//! Corpus-level property tests for the cross-validation subsystem:
//! the full derive→parse round-trip is clean, and *damaged* corpus
//! text — truncated at an arbitrary byte, or with a single byte
//! flipped — can never panic the parser and can never **upgrade** a
//! verdict to `confirmed`. The soundness argument the tests pin:
//!
//! * every block carries a `sig:` line over its body, so in-block
//!   damage quarantines the block instead of feeding the scorer a
//!   silently different object;
//! * the corpus ends with a signed `end:` reconciliation trailer, so
//!   truncation (which loses or damages the trailer) marks the corpus
//!   incomplete;
//! * a degraded corpus (`quarantined > 0 || !complete`) gates the
//!   scoring ladder: `CorpusDegraded` outranks every confirmation, so
//!   `confirmed == 0`.
//!
//! Together: a damaged corpus either scores **identically** to the
//! pristine one (the damage hit inert bytes — trailing newline, a
//! comment) or confirms **nothing**. Seeded randomized-input loops
//! stand in for proptest (the offline build has no registry).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mlpeer::infer::{LinkInferencer, MlpLinkSet, Observation};
use mlpeer::sink::ObservationSink;
use mlpeer::validate::cross::{
    derive_corpus, parse_corpus, score_links, CorpusConfig, ValidationReport,
};
use mlpeer_ixp::{Ecosystem, EcosystemConfig};

/// Fixed inputs every damaged-corpus case scores against.
struct Bed {
    text: String,
    links: MlpLinkSet,
    observations: Vec<Observation>,
    full: ValidationReport,
}

fn harvest(eco: &Ecosystem) -> (MlpLinkSet, Vec<Observation>) {
    let (conn, observations) = mlpeer::live::full_harvest(eco);
    let mut inferencer = LinkInferencer::default();
    for o in &observations {
        inferencer.push(o.clone());
    }
    (inferencer.finalize(&conn), observations)
}

fn bed() -> Bed {
    let eco = Ecosystem::generate(EcosystemConfig::tiny(7));
    let (links, observations) = harvest(&eco);
    let text = derive_corpus(&eco, &CorpusConfig::seeded(7));
    let full = report_for(&text, &links, &observations);
    Bed {
        text,
        links,
        observations,
        full,
    }
}

fn report_for(text: &str, links: &MlpLinkSet, observations: &[Observation]) -> ValidationReport {
    let corpus = parse_corpus(text);
    let announcements = mlpeer::index::scan::announcements(links, observations);
    score_links(&corpus, links, &announcements).0
}

/// The one property damage must uphold: either the damage was inert
/// (report identical to pristine) or the corpus degraded and nothing
/// is confirmed. There is no third outcome where damaged text mints
/// new `confirmed` verdicts.
fn assert_never_upgrades(bed: &Bed, damaged: &str, what: &str) {
    let report = report_for(damaged, &bed.links, &bed.observations);
    if report != bed.full {
        assert!(
            report.corpus.degraded(),
            "{what}: report changed without the corpus degrading"
        );
        assert_eq!(
            report.totals.confirmed, 0,
            "{what}: a degraded corpus must confirm nothing"
        );
    }
}

#[test]
fn pristine_corpus_round_trips_complete_and_clean() {
    let bed = bed();
    let corpus = parse_corpus(&bed.text);
    assert!(corpus.stats.complete, "derived corpus must reconcile");
    assert_eq!(corpus.stats.quarantined, 0);
    assert!(!corpus.stats.degraded());
    assert!(corpus.stats.objects > 0 && corpus.stats.roas > 0);
    assert!(
        bed.full.totals.confirmed > 0,
        "the pristine baseline must confirm links, or the damage \
         properties below are vacuous"
    );
}

#[test]
fn truncation_never_panics_and_never_upgrades_to_confirmed() {
    let bed = bed();
    let mut rng = StdRng::seed_from_u64(0x7070);
    let len = bed.text.len();
    // Boundary cuts plus a seeded sample — the corpus is a few hundred
    // kilobytes, so exhaustive per-byte cuts would dominate the suite.
    let mut cuts = vec![0, 1, len / 2, len - 2, len - 1];
    cuts.extend((0..96).map(|_| rng.gen_range(0..len)));
    for cut in cuts {
        assert_never_upgrades(&bed, &bed.text[..cut], &format!("truncated at {cut}/{len}"));
    }
}

#[test]
fn single_byte_corruption_never_panics_and_never_upgrades_to_confirmed() {
    let bed = bed();
    let mut rng = StdRng::seed_from_u64(0x7171);
    for _ in 0..96 {
        let mut bytes = bed.text.as_bytes().to_vec();
        let pos = rng.gen_range(0..bytes.len());
        // The corpus is ASCII; a printable-ASCII replacement keeps the
        // damaged buffer a valid &str (non-UTF-8 damage cannot reach
        // the parser, which only accepts &str).
        let flip = loop {
            let b = rng.gen_range(0x20u8..0x7f);
            if b != bytes[pos] {
                break b;
            }
        };
        bytes[pos] = flip;
        let damaged = String::from_utf8(bytes).unwrap();
        assert_never_upgrades(
            &bed,
            &damaged,
            &format!("byte {pos} flipped to {flip:#04x}"),
        );
    }
}
