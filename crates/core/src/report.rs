//! Reporting helpers: ASCII tables, CDF/CCDF series, CSV and JSON
//! export for the experiment binaries.

use std::fmt::Write as _;

use serde::Serialize;

/// A simple left-aligned ASCII table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (padded/truncated to the header width).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let mut r: Vec<String> = cells.into_iter().map(Into::into).collect();
        r.resize(self.headers.len(), String::new());
        self.rows.push(r);
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate().take(ncols) {
                let _ = write!(out, "{:<width$}  ", cell, width = widths[i]);
            }
            out.truncate(out.trim_end().len());
            out.push('\n');
        };
        line(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * ncols.saturating_sub(1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Empirical CDF: sorted `(value, F(value))` points.
pub fn cdf(values: &[f64]) -> Vec<(f64, f64)> {
    if values.is_empty() {
        return Vec::new();
    }
    let mut v: Vec<f64> = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in CDF input"));
    let n = v.len() as f64;
    v.into_iter()
        .enumerate()
        .map(|(i, x)| (x, (i + 1) as f64 / n))
        .collect()
}

/// Empirical CCDF: sorted `(value, P(X > value))` points.
pub fn ccdf(values: &[f64]) -> Vec<(f64, f64)> {
    cdf(values).into_iter().map(|(x, f)| (x, 1.0 - f)).collect()
}

/// The value at quantile `q` (0..=1) of the empirical distribution.
pub fn quantile(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut v: Vec<f64> = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let idx = ((v.len() as f64 - 1.0) * q.clamp(0.0, 1.0)).round() as usize;
    Some(v[idx])
}

/// Serialize any value to pretty JSON (experiment outputs, snapshot
/// ETags). Object keys are sorted recursively, so two structurally
/// equal values always render byte-identically — regardless of field
/// declaration or `Map` insertion order — and snapshot ETags/diffs
/// stay stable across runs.
pub fn to_json<T: Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(&canonical_value(value)).expect("experiment reports serialize")
}

/// Compact single-line variant of [`to_json`], same key ordering.
pub fn to_json_compact<T: Serialize>(value: &T) -> String {
    serde_json::to_string(&canonical_value(value)).expect("reports serialize")
}

/// The value's JSON tree with every object's keys sorted, recursively.
pub fn canonical_value<T: Serialize>(value: &T) -> serde_json::Value {
    sort_keys(serde_json::to_value(value))
}

fn sort_keys(v: serde_json::Value) -> serde_json::Value {
    use serde_json::{Map, Value};
    match v {
        Value::Array(items) => Value::Array(items.into_iter().map(sort_keys).collect()),
        Value::Object(map) => {
            let mut entries = map.into_entries();
            for (_, val) in &mut entries {
                *val = sort_keys(std::mem::take(val));
            }
            entries.sort_by(|a, b| a.0.cmp(&b.0));
            Value::Object(Map::from_iter(entries))
        }
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["IXP", "Links"]);
        t.row(["DE-CIX", "54082"]).row(["AMS-IX", "49249"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("IXP"));
        assert!(lines[1].starts_with('-'));
        assert!(lines[2].contains("54082"));
        // Columns align.
        assert_eq!(lines[2].find("54082"), lines[3].find("49249"));
    }

    #[test]
    fn table_csv_escapes() {
        let mut t = Table::new(["a", "b"]);
        t.row(["x,y", "has \"quote\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"has \"\"quote\"\"\""));
    }

    #[test]
    fn row_pads_short_rows() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["1"]);
        assert_eq!(t.rows[0].len(), 3);
    }

    #[test]
    fn cdf_properties() {
        let points = cdf(&[3.0, 1.0, 2.0, 2.0]);
        assert_eq!(points.len(), 4);
        assert_eq!(points[0].0, 1.0);
        assert!((points.last().unwrap().1 - 1.0).abs() < 1e-12);
        // Monotone.
        for w in points.windows(2) {
            assert!(w[0].0 <= w[1].0 && w[0].1 <= w[1].1);
        }
        assert!(cdf(&[]).is_empty());
    }

    #[test]
    fn ccdf_complements_cdf() {
        let c = cdf(&[1.0, 2.0, 3.0]);
        let cc = ccdf(&[1.0, 2.0, 3.0]);
        for (a, b) in c.iter().zip(cc.iter()) {
            assert_eq!(a.0, b.0);
            assert!((a.1 + b.1 - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn quantiles() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&v, 0.0), Some(1.0));
        assert_eq!(quantile(&v, 0.5), Some(3.0));
        assert_eq!(quantile(&v, 1.0), Some(5.0));
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn json_export() {
        #[derive(serde::Serialize)]
        struct R {
            links: usize,
        }
        let s = to_json(&R { links: 206_667 });
        assert!(s.contains("206667"));
    }

    /// Regression: `to_json` orders object keys deterministically, so
    /// two structurally equal values render byte-identically no matter
    /// the insertion (or field declaration) order. Snapshot ETags and
    /// diffs depend on this.
    #[test]
    fn to_json_orders_object_keys_deterministically() {
        let forward = serde_json::json!({
            "alpha": 1usize,
            "zeta": serde_json::json!({"inner_b": 2usize, "inner_a": [serde_json::json!({"y": 1usize, "x": 2usize})]}),
            "mid": "m",
        });
        let mut reversed = serde_json::Map::new();
        reversed.insert("mid".into(), serde_json::to_value(&"m"));
        reversed.insert(
            "zeta".into(),
            serde_json::json!({"inner_a": [serde_json::json!({"x": 2usize, "y": 1usize})], "inner_b": 2usize}),
        );
        reversed.insert("alpha".into(), serde_json::to_value(&1usize));
        let a = to_json(&forward);
        let b = to_json(&serde_json::Value::Object(reversed));
        assert_eq!(a, b, "key order must not depend on insertion order");
        // Keys appear sorted in the rendered text.
        let ia = a.find("\"alpha\"").unwrap();
        let im = a.find("\"mid\"").unwrap();
        let iz = a.find("\"zeta\"").unwrap();
        assert!(ia < im && im < iz);
        let ix = a.find("\"x\"").unwrap();
        let iy = a.find("\"y\"").unwrap();
        assert!(ix < iy, "nested objects inside arrays are sorted too");
        assert_eq!(to_json_compact(&forward).lines().count(), 1);
    }
}
