//! The deterministic pipeline stages shared by the in-process harness
//! (`mlpeer-bench`) and the multi-process coordinator (`mlpeer-dist`).
//!
//! `mlpeer_bench::run_pipeline` used to own the whole §4.1 sequence
//! inline. Splitting it into [`prepare`] (every input substrate, seeded
//! deterministically from `(ecosystem, seed)`) and [`run_active_stage`]
//! (the Eq. 2 active queries that run *after* the passive harvest) lets
//! a distributed harvest swap only the passive stage while keeping the
//! surrounding stages — and therefore the end result — byte-identical:
//! a worker process given the same `(scale, seed)` regenerates exactly
//! this prep and harvests its assigned slice of it.

use std::collections::{BTreeMap, BTreeSet};

use mlpeer_bgp::{Asn, Prefix};
use mlpeer_data::collector::{build_passive, CollectorConfig, PassiveDataset};
use mlpeer_data::irr::{build_irr, IrrConfig, IrrDatabase, Source};
use mlpeer_data::lg::{build_lg_roster, LgTarget, LookingGlassHost};
use mlpeer_data::Sim;
use mlpeer_ixp::ixp::IxpId;
use mlpeer_ixp::Ecosystem;
use mlpeer_topo::infer::{infer_relationships, InferConfig, InferredRelationships};

use crate::active::{query_member_lgs, query_rs_lg, ActiveConfig, ActiveStats};
use crate::connectivity::{gather_connectivity, ConnectivityData};
use crate::dict::{dictionary_from_connectivity, CommunityDictionary};
use crate::infer::{LinkInferencer, Observation, ObservationSource};

/// The tee every pipeline variant folds into: the retained observation
/// list (the per-figure analyses read it) plus the incremental link
/// inferencer.
pub type TeeSink = (Vec<Observation>, LinkInferencer);

/// Every input substrate one pipeline run needs, built deterministically
/// from `(ecosystem, seed)` — the part a distributed worker regenerates
/// locally instead of receiving over the wire.
pub struct PipelinePrep<'e> {
    /// The shared routing simulation.
    pub sim: Sim<'e>,
    /// IRR registries.
    pub irr: BTreeMap<Source, IrrDatabase>,
    /// All looking glasses (RS + member).
    pub lgs: Vec<LookingGlassHost>,
    /// Connectivity data.
    pub conn: ConnectivityData,
    /// The community dictionary.
    pub dict: CommunityDictionary,
    /// Archived collector data.
    pub passive: PassiveDataset,
    /// Relationship inference over public paths.
    pub rels: InferredRelationships,
}

/// Build every input substrate of one pipeline run. The seed offsets
/// (`^0x11` IRR, `^0x22` LG roster, `^0x33` collectors) are part of the
/// determinism contract: any process given the same `(eco, seed)`
/// reproduces byte-identical substrates.
pub fn prepare(eco: &Ecosystem, seed: u64) -> PipelinePrep<'_> {
    let sim = Sim::new(eco);
    let irr = build_irr(
        eco,
        &IrrConfig {
            seed: seed ^ 0x11,
            ..IrrConfig::default()
        },
    );
    let lgs = build_lg_roster(&sim, seed ^ 0x22, 70, 0.2);
    let conn = gather_connectivity(&sim, &lgs, &irr);
    let dict = dictionary_from_connectivity(eco, &conn);
    let passive = build_passive(&sim, &CollectorConfig::paper_like(seed ^ 0x33));
    let public_paths: Vec<Vec<Asn>> = passive
        .collectors
        .iter()
        .flat_map(|(_, a)| a.rib.iter().map(|e| e.attrs.as_path.dedup_prepends()))
        .collect();
    let rels = infer_relationships(&public_paths, &InferConfig::default());
    PipelinePrep {
        sim,
        irr,
        lgs,
        conn,
        dict,
        passive,
        rels,
    }
}

/// The active stage (§4.1, Eq. 2), streaming into the same tee the
/// passive harvest filled: per IXP, query the RS looking glass when one
/// exists, otherwise fall back to third-party member LGs. The
/// passively-covered skip sets come from one pass over the harvest in
/// the tee, so this runs identically whether the passive stage executed
/// in-process or across worker processes.
pub fn run_active_stage(
    eco: &Ecosystem,
    prep: &PipelinePrep<'_>,
    sink: &mut TeeSink,
) -> Vec<(IxpId, ActiveStats)> {
    let mut passive_covered: crate::hash::FxHashMap<IxpId, BTreeSet<Asn>> = Default::default();
    for o in sink
        .0
        .iter()
        .filter(|o| o.source == ObservationSource::Passive)
    {
        passive_covered.entry(o.ixp).or_default().insert(o.member);
    }
    let mut active_stats = Vec::new();
    for ixp in &eco.ixps {
        let covered: BTreeSet<Asn> = passive_covered.get(&ixp.id).cloned().unwrap_or_default();
        let rs_lg = prep
            .lgs
            .iter()
            .find(|l| matches!(l.target, LgTarget::RouteServer(id) if id == ixp.id));
        if let Some(lg) = rs_lg {
            let stats = query_rs_lg(
                &prep.sim,
                lg,
                ixp.id,
                &prep.dict,
                &covered,
                &ActiveConfig::default(),
                sink,
            );
            active_stats.push((ixp.id, stats));
        } else {
            // Third-party member LGs (§4.1 fallback). Candidates: route
            // objects of known members plus passively-seen prefixes.
            let members = prep.conn.rs_members(ixp.id);
            let hosts: Vec<&LookingGlassHost> = prep
                .lgs
                .iter()
                .filter(|l| match l.target {
                    LgTarget::Member(a) => members.contains(&a),
                    _ => false,
                })
                .take(3)
                .collect();
            let mut candidates: Vec<Prefix> = prep
                .irr
                .values()
                .flat_map(|db| {
                    db.objects.iter().filter_map(|o| match o {
                        mlpeer_data::irr::RpslObject::Route { prefix, origin, .. }
                            if members.contains(origin) =>
                        {
                            Some(*prefix)
                        }
                        _ => None,
                    })
                })
                .collect();
            candidates.sort_unstable();
            candidates.dedup();
            let stats = query_member_lgs(
                &prep.sim,
                &hosts,
                ixp.id,
                &prep.dict,
                &prep.rels,
                &candidates,
                400,
                sink,
            );
            active_stats.push((ixp.id, stats));
        }
    }
    active_stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passive::{harvest_passive_sharded, PassiveConfig};
    use mlpeer_ixp::EcosystemConfig;

    /// The split stages compose to a working end-to-end run (the
    /// byte-identity against the monolithic `run_pipeline` is asserted
    /// in `mlpeer-bench`, which wraps these stages).
    #[test]
    fn prep_plus_active_stage_compose() {
        let eco = Ecosystem::generate(EcosystemConfig::tiny(2024));
        let prep = prepare(&eco, 2024);
        let (mut sink, stats) = harvest_passive_sharded::<TeeSink>(
            &prep.passive,
            &prep.dict,
            &prep.conn,
            &prep.rels,
            &PassiveConfig::default(),
        );
        assert!(stats.observations > 0);
        let active = run_active_stage(&eco, &prep, &mut sink);
        assert_eq!(active.len(), eco.ixps.len());
        let links = sink.1.finalize(&prep.conn);
        assert!(!links.unique_links().is_empty());
    }
}
