//! Link inference (§4.1 steps 4–5), as a streaming fold.
//!
//! Observations — "(IXP, setter, prefix) announced with these RS
//! actions" — arrive from the passive and active pipelines. Per member
//! `a`, the export-reach set is reconstructed per prefix,
//!
//! ```text
//! N_{a,p} = A_RS − E_p   (ALL + EXCLUDE)
//! N_{a,p} = I_p          (NONE + INCLUDE)
//! N_a     = ⋂_p N_{a,p}
//! ```
//!
//! and a p2p link `a–b` is inferred iff `a ∈ N_b ∧ b ∈ N_a` — the
//! *reciprocity assumption* validated in §4.4. Links are deduplicated
//! across IXPs with the per-IXP provenance retained (the Table 2
//! "Links" column vs the 206,667 unique total).
//!
//! [`LinkInferencer`] is an [`ObservationSink`]: instead of grouping a
//! materialized `Vec<Observation>` at the end, it folds each
//! observation into a per-`(ixp, member, prefix)` policy accumulator
//! the moment it arrives — `ExportPolicy::from_actions` only ever looks
//! at the *set* of decoded actions, so the fold is order-insensitive
//! and per-shard inferencers [`merge`](LinkInferencer::merge) into
//! exactly the serial state. The fold is **log-structured** over
//! **interned** handles ([`crate::intern`]): `(ixp, member)` pairs
//! become dense u32 handles memoized across the long per-member runs
//! the stream arrives in, each handle is fused with the packed prefix
//! ([`pack_prefix`]) into one u64 reach key, and the hot loop merely
//! appends `(key, action)` words to a flat log — no hashing, no table
//! probes, no per-member indirection to cold side allocations. The
//! policy accumulators are reconstructed once per report by sorting
//! and run-grouping the log at the cold boundaries
//! ([`finalize`](LinkInferencer::finalize),
//! [`export_state`](LinkInferencer::export_state)) — which had to sort
//! their output anyway to emit canonical order.

use std::collections::{BTreeMap, BTreeSet};

use mlpeer_bgp::{Asn, Prefix};
use mlpeer_ixp::ixp::IxpId;
use mlpeer_ixp::policy::ExportPolicy;
use mlpeer_ixp::scheme::RsAction;

use crate::connectivity::ConnectivityData;
use crate::hash::{FxHashMap, FxHashSet};
use crate::intern::{pack_prefix, unpack_prefix, MemberId, MemberTable};
use crate::sink::{MergeSink, ObservationSink};

/// [`pack_prefix`] uses the low 40 bits; the [`MemberId`] index rides
/// above them, so one u64 names a `(member, prefix)` reach edge.
const MEMBER_SHIFT: u32 = 40;

#[inline]
fn fuse(mid: MemberId, packed: u64) -> u64 {
    debug_assert!(packed < 1 << MEMBER_SHIFT);
    ((mid.index() as u64) << MEMBER_SHIFT) | packed
}

#[inline]
fn split(fused: u64) -> (MemberId, u64) {
    (
        MemberId((fused >> MEMBER_SHIFT) as u32),
        fused & ((1 << MEMBER_SHIFT) - 1),
    )
}

/// [`RsAction`] encoded into one log word: tag above bit 32, the named
/// member ASN (for INCLUDE/EXCLUDE) in the low half. `ACT_ALL` is zero
/// so a bare existence marker — an observation with an empty action
/// list, meaning the default ALL — is the cheapest record of all.
const ACT_ALL: u64 = 0;
const ACT_NONE: u64 = 1 << 32;
const ACT_INCLUDE: u64 = 2 << 32;
const ACT_EXCLUDE: u64 = 3 << 32;
const ACT_TAG: u64 = 3 << 32;

#[inline]
fn encode_action(action: RsAction) -> u64 {
    match action {
        RsAction::All => ACT_ALL,
        RsAction::None => ACT_NONE,
        RsAction::Include(m) => ACT_INCLUDE | m.value() as u64,
        RsAction::Exclude(m) => ACT_EXCLUDE | m.value() as u64,
    }
}

/// Where an observation came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ObservationSource {
    /// Mined from collector archives (§4.2).
    Passive,
    /// Queried from the IXP's own route-server LG (§4.1).
    ActiveRsLg,
    /// Queried from a third-party member LG (§4.1 fallback).
    ActiveMemberLg,
}

/// One reachability observation: `member` announced `prefix` at `ixp`
/// with these decoded actions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Observation {
    /// The IXP whose route server the communities were set at.
    pub ixp: IxpId,
    /// The RS setter.
    pub member: Asn,
    /// The announced prefix.
    pub prefix: Prefix,
    /// Decoded actions (empty = default ALL).
    pub actions: Vec<RsAction>,
    /// Provenance.
    pub source: ObservationSource,
}

/// The inferred link set.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize)]
pub struct MlpLinkSet {
    /// Per-IXP links (`a < b`).
    pub per_ixp: BTreeMap<IxpId, BTreeSet<(Asn, Asn)>>,
    /// Members with reachability data per IXP (the Pasv/Active columns
    /// add up to this).
    pub covered: BTreeMap<IxpId, BTreeSet<Asn>>,
    /// Reconstructed default export policy per (ixp, member).
    pub policies: BTreeMap<(IxpId, Asn), ExportPolicy>,
}

impl MlpLinkSet {
    /// All unique links across IXPs.
    pub fn unique_links(&self) -> BTreeSet<(Asn, Asn)> {
        self.per_ixp.values().flatten().copied().collect()
    }

    /// Total per-IXP link count (the Table 2 summation, which exceeds
    /// the unique count by the multi-IXP overlap).
    pub fn per_ixp_total(&self) -> usize {
        self.per_ixp.values().map(BTreeSet::len).sum()
    }

    /// Links appearing at more than one IXP.
    pub fn overlap_links(&self) -> BTreeSet<(Asn, Asn)> {
        let mut seen: BTreeMap<(Asn, Asn), usize> = BTreeMap::new();
        for links in self.per_ixp.values() {
            for l in links {
                *seen.entry(*l).or_default() += 1;
            }
        }
        seen.into_iter()
            .filter(|(_, n)| *n > 1)
            .map(|(l, _)| l)
            .collect()
    }

    /// Links common to two IXPs (the AMS-IX ∩ DE-CIX 7,502 statistic).
    pub fn common_links(&self, a: IxpId, b: IxpId) -> usize {
        match (self.per_ixp.get(&a), self.per_ixp.get(&b)) {
            (Some(x), Some(y)) => x.intersection(y).count(),
            _ => 0,
        }
    }

    /// Distinct ASNs involved in any link.
    pub fn distinct_asns(&self) -> BTreeSet<Asn> {
        self.unique_links()
            .into_iter()
            .flat_map(|(a, b)| [a, b])
            .collect()
    }

    /// Links at one IXP.
    pub fn links_at(&self, ixp: IxpId) -> &BTreeSet<(Asn, Asn)> {
        static EMPTY: std::sync::OnceLock<BTreeSet<(Asn, Asn)>> = std::sync::OnceLock::new();
        self.per_ixp
            .get(&ixp)
            .unwrap_or_else(|| EMPTY.get_or_init(BTreeSet::new))
    }
}

/// The commutative fold of every action observed for one
/// `(ixp, member, prefix)`: exactly the state
/// [`ExportPolicy::from_actions`] extracts from an action list, so
/// absorbing actions one observation at a time — in any arrival order,
/// across any shard split — reconstructs the same policy as batching
/// the concatenated list.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct PolicyAcc {
    saw_none: bool,
    /// Raw append logs, *not* sets: accumulators are reconstructed at
    /// the cold boundaries by replaying a key-sorted action log, and
    /// every collector carrying a route re-tags the same
    /// include/exclude peers, so set maintenance per action would pay
    /// an ordered-insert on every repeat. [`policy`](PolicyAcc::policy)
    /// and the [`InferEntry`] export collect into `BTreeSet` and dedupe
    /// there, once. Memory stays bounded by the action stream.
    includes: Vec<Asn>,
    excludes: Vec<Asn>,
}

impl PolicyAcc {
    /// Replay one encoded log word.
    fn absorb_word(&mut self, word: u64) {
        let named = Asn((word & 0xFFFF_FFFF) as u32);
        match word & ACT_TAG {
            ACT_NONE => self.saw_none = true,
            ACT_INCLUDE => self.includes.push(named),
            ACT_EXCLUDE => self.excludes.push(named),
            _ => {} // ACT_ALL: existence only
        }
    }

    /// §4.1 step 4, with [`ExportPolicy::from_actions`]'s precedence.
    fn policy(&self) -> ExportPolicy {
        if self.saw_none {
            if self.includes.is_empty() {
                ExportPolicy::Nobody
            } else {
                ExportPolicy::OnlyTo(self.includes.iter().copied().collect())
            }
        } else if !self.excludes.is_empty() {
            ExportPolicy::AllExcept(self.excludes.iter().copied().collect())
        } else {
            ExportPolicy::AllMembers
        }
    }
}

/// A streaming [`ObservationSink`] that folds export-reach state
/// incrementally and emits the [`MlpLinkSet`] at
/// [`finalize`](LinkInferencer::finalize). Per-shard inferencers
/// [`merge`](LinkInferencer::merge) commutatively, so the sharded
/// passive harvest reproduces the serial result exactly.
#[derive(Debug, Clone, Default)]
pub struct LinkInferencer {
    /// `(ixp, member)` → dense [`MemberId`] (the reach-key high bits).
    members: MemberTable,
    /// The append-only fold log: one `([`fuse`]d reach key, encoded
    /// action)` word pair per decoded action (one `ACT_ALL` marker for
    /// an empty list — existence of the edge is itself signal). Any
    /// keyed table here — wide keys, interned keys, one level or two —
    /// pays a hash and a probe of progressively colder memory on every
    /// observation; the log pays a bounds check and a 16-byte store.
    /// The table shape is recovered at the cold boundaries by one
    /// sort + run-group pass ([`consolidated`](Self::consolidated)),
    /// which the canonical-order exports needed anyway.
    log: Vec<(u64, u64)>,
    observations: usize,
    /// The previous push's `(ixp, member) → MemberId` resolution.
    /// Observation streams arrive in long per-member runs (a member's
    /// prefixes are walked in order, by collectors and LGs alike), so
    /// this one-entry memo skips the intern-table probe for every
    /// observation after the first of a run. Pure cache: ids are never
    /// invalidated, so a stale entry is merely a miss, and
    /// [`merge`](MergeSink::merge) need not touch it.
    last: Option<((IxpId, Asn), MemberId)>,
}

impl ObservationSink for LinkInferencer {
    fn push(&mut self, obs: Observation) {
        let key = (obs.ixp, obs.member);
        let mid = match self.last {
            Some((k, mid)) if k == key => mid,
            _ => {
                let mid = self.members.intern(obs.ixp, obs.member);
                self.last = Some((key, mid));
                mid
            }
        };
        let key = fuse(mid, pack_prefix(obs.prefix));
        if obs.actions.is_empty() {
            self.log.push((key, ACT_ALL));
        } else {
            for action in obs.actions {
                self.log.push((key, encode_action(action)));
            }
        }
        self.observations += 1;
    }
}

impl MergeSink for LinkInferencer {
    fn merge(&mut self, other: Self) {
        // Remap the other shard's member ids into this intern table;
        // the log is key-sorted downstream, so plain concatenation is
        // the whole merge. The sorted log arrives in long per-member
        // runs, so the remap memoizes like `push` does.
        let mut memo: Option<(MemberId, MemberId)> = None;
        self.log.reserve(other.log.len());
        for (fused, act) in other.log {
            let (omid, packed) = split(fused);
            let mid = match memo {
                Some((from, to)) if from == omid => to,
                _ => {
                    let (ixp, member) = other.members.resolve(omid);
                    let to = self.members.intern(ixp, member);
                    memo = Some((omid, to));
                    to
                }
            };
            self.log.push((fuse(mid, packed), act));
        }
        self.observations += other.observations;
    }
}

impl LinkInferencer {
    /// Observations folded so far.
    pub fn observation_count(&self) -> usize {
        self.observations
    }

    /// Distinct `(ixp, member)` pairs with any reachability data
    /// (before the membership filter).
    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    /// Distinct `(member, prefix)` reach edges folded so far
    /// (consolidates the log; a report-boundary statistic, not a
    /// hot-path counter).
    pub fn edge_count(&self) -> usize {
        self.consolidated().len()
    }

    /// The boundary consolidation: sort the log, replay each key's run
    /// into a [`PolicyAcc`]. Output is sorted by fused key —
    /// `(intern order, prefix)` runs, one contiguous run per member —
    /// for the cold walks that emit per-member reports.
    fn consolidated(&self) -> Vec<(u64, PolicyAcc)> {
        let mut log = self.log.clone();
        log.sort_unstable();
        let mut out: Vec<(u64, PolicyAcc)> = Vec::new();
        for (key, act) in log {
            match out.last_mut() {
                Some((k, acc)) if *k == key => acc.absorb_word(act),
                _ => {
                    let mut acc = PolicyAcc::default();
                    acc.absorb_word(act);
                    out.push((key, acc));
                }
            }
        }
        out
    }

    /// The report boundary: reconstruct `N_a` for every covered member,
    /// infer reciprocal links, and emit the sorted [`MlpLinkSet`].
    pub fn finalize(&self, conn: &ConnectivityData) -> MlpLinkSet {
        let mut out = MlpLinkSet::default();

        // Per-IXP member sets, fetched once (not per observation group).
        let mut members_at: FxHashMap<IxpId, BTreeSet<Asn>> = FxHashMap::default();
        // Per IXP: member → N_a.
        let mut reach: BTreeMap<IxpId, BTreeMap<Asn, FxHashSet<Asn>>> = BTreeMap::new();

        let edges = self.consolidated();
        let mut rest = edges.as_slice();
        while let Some(&(first, _)) = rest.first() {
            let (mid, _) = split(first);
            let run = rest
                .iter()
                .position(|(k, _)| split(*k).0 != mid)
                .unwrap_or(rest.len());
            let (prefixes, tail) = rest.split_at(run);
            rest = tail;
            let (ixp, member) = self.members.resolve(mid);
            let members = members_at
                .entry(ixp)
                .or_insert_with(|| conn.rs_members(ixp));
            if !members.contains(&member) {
                continue; // reachability data for an AS we cannot place
            }
            let mut na: Option<FxHashSet<Asn>> = None;
            // The reported default policy is the first prefix's in sorted
            // order, matching the previous batch grouping.
            let mut default_policy: Option<(Prefix, ExportPolicy)> = None;
            for (fused, acc) in prefixes {
                let prefix = unpack_prefix(split(*fused).1);
                let policy = acc.policy();
                let nap: FxHashSet<Asn> = members
                    .iter()
                    .copied()
                    .filter(|&m| m != member && policy.allows(m))
                    .collect();
                na = Some(match na.take() {
                    None => nap,
                    Some(prev) => prev.intersection(&nap).copied().collect(),
                });
                match &default_policy {
                    Some((first, _)) if *first <= prefix => {}
                    _ => default_policy = Some((prefix, policy)),
                }
            }
            let na = na.unwrap_or_default();
            reach.entry(ixp).or_default().insert(member, na);
            out.covered.entry(ixp).or_default().insert(member);
            if let Some((_, p)) = default_policy {
                out.policies.insert((ixp, member), p);
            }
        }

        // Step 5: reciprocal links.
        for (ixp, members) in &reach {
            let links = out.per_ixp.entry(*ixp).or_default();
            let asns: Vec<Asn> = members.keys().copied().collect();
            for (i, &a) in asns.iter().enumerate() {
                for &b in &asns[i + 1..] {
                    if members[&a].contains(&b) && members[&b].contains(&a) {
                        links.insert((a, b));
                    }
                }
            }
        }
        out
    }
}

/// One exported reach-table edge: the commutatively-folded policy
/// state of a single `(ixp, member, prefix)` — exactly the fields of
/// the internal accumulator, flattened for transport.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InferEntry {
    /// The IXP the reachability was observed at.
    pub ixp: IxpId,
    /// The RS setter.
    pub member: Asn,
    /// The announced prefix.
    pub prefix: Prefix,
    /// A `NONE` action was observed for this prefix.
    pub saw_none: bool,
    /// Members named by `INCLUDE` actions.
    pub includes: BTreeSet<Asn>,
    /// Members named by `EXCLUDE` actions.
    pub excludes: BTreeSet<Asn>,
}

/// A portable, canonically-ordered snapshot of a [`LinkInferencer`]'s
/// folded state: entries sorted by `(ixp, member, prefix)` regardless
/// of the intern order they were folded in, so two inferencers that
/// saw the same observations export identical states. This is the
/// unit the distributed harvest ships over the wire —
/// [`absorb_state`](LinkInferencer::absorb_state) reproduces
/// [`merge`](LinkInferencer::merge) exactly.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InferState {
    /// Reach-table edges, sorted by `(ixp, member, prefix)`.
    pub entries: Vec<InferEntry>,
    /// Observations the producing inferencer folded.
    pub observations: u64,
}

impl LinkInferencer {
    /// Export the folded state in canonical `(ixp, member, prefix)`
    /// order — intern-order-independent, so a shard's export depends
    /// only on *what* it folded, never on arrival order.
    pub fn export_state(&self) -> InferState {
        let edges = self.consolidated();
        let mut entries = Vec::with_capacity(edges.len());
        for (fused, acc) in &edges {
            let (mid, packed) = split(*fused);
            let (ixp, member) = self.members.resolve(mid);
            entries.push(InferEntry {
                ixp,
                member,
                prefix: unpack_prefix(packed),
                saw_none: acc.saw_none,
                includes: acc.includes.iter().copied().collect(),
                excludes: acc.excludes.iter().copied().collect(),
            });
        }
        entries.sort_unstable_by_key(|e| (e.ixp, e.member, pack_prefix(e.prefix)));
        InferState {
            entries,
            observations: self.observations as u64,
        }
    }

    /// Fold an exported state in — semantically identical to
    /// [`merge`](LinkInferencer::merge) with the inferencer that
    /// produced it, so a coordinator absorbing worker exports ends in
    /// exactly the serial state.
    pub fn absorb_state(&mut self, state: InferState) {
        for e in state.entries {
            let mid = self.members.intern(e.ixp, e.member);
            let key = fuse(mid, pack_prefix(e.prefix));
            let start = self.log.len();
            if e.saw_none {
                self.log.push((key, ACT_NONE));
            }
            for m in e.includes {
                self.log.push((key, ACT_INCLUDE | m.value() as u64));
            }
            for m in e.excludes {
                self.log.push((key, ACT_EXCLUDE | m.value() as u64));
            }
            if self.log.len() == start {
                self.log.push((key, ACT_ALL)); // edge existence is signal
            }
        }
        self.observations += state.observations as usize;
    }
}

/// Batch convenience: fold a materialized observation list and
/// finalize. The streaming paths push into a [`LinkInferencer`]
/// directly instead.
pub fn infer_links(conn: &ConnectivityData, observations: &[Observation]) -> MlpLinkSet {
    let mut inferencer = LinkInferencer::default();
    for obs in observations {
        inferencer.push(obs.clone());
    }
    inferencer.finalize(conn)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::ConnSource;

    fn conn_with(members: &[u32]) -> ConnectivityData {
        let mut c = ConnectivityData::default();
        for &m in members {
            c.record(IxpId(0), Asn(m), ConnSource::LookingGlass);
        }
        c
    }

    fn obs(member: u32, prefix: &str, actions: Vec<RsAction>) -> Observation {
        Observation {
            ixp: IxpId(0),
            member: Asn(member),
            prefix: prefix.parse().unwrap(),
            actions,
            source: ObservationSource::ActiveRsLg,
        }
    }

    /// The Figure 3 scenario: A=1, B=2, C=3, D=4. A includes only B and
    /// D; the rest are open. Expected: every pair except A–C.
    #[test]
    fn figure3_inference() {
        let conn = conn_with(&[1, 2, 3, 4]);
        let observations = vec![
            obs(
                1,
                "10.1.0.0/24",
                vec![
                    RsAction::None,
                    RsAction::Include(Asn(2)),
                    RsAction::Include(Asn(4)),
                ],
            ),
            obs(2, "10.2.0.0/24", vec![RsAction::All]),
            obs(3, "10.3.0.0/24", vec![RsAction::All]),
            obs(4, "10.4.0.0/24", vec![RsAction::All]),
        ];
        let links = infer_links(&conn, &observations);
        let at0 = links.links_at(IxpId(0));
        assert!(at0.contains(&(Asn(1), Asn(2))));
        assert!(at0.contains(&(Asn(1), Asn(4))));
        assert!(at0.contains(&(Asn(2), Asn(3))));
        assert!(at0.contains(&(Asn(2), Asn(4))));
        assert!(at0.contains(&(Asn(3), Asn(4))));
        assert!(
            !at0.contains(&(Asn(1), Asn(3))),
            "A blocks C, so no link despite C allowing A (Fig. 3)"
        );
        assert_eq!(at0.len(), 5);
    }

    #[test]
    fn figure2b_all_exclude() {
        let conn = conn_with(&[1, 2, 3, 4]);
        let observations = vec![
            obs(
                1,
                "10.1.0.0/24",
                vec![RsAction::All, RsAction::Exclude(Asn(3))],
            ),
            obs(2, "10.2.0.0/24", vec![]),
            obs(3, "10.3.0.0/24", vec![]),
            obs(4, "10.4.0.0/24", vec![]),
        ];
        let links = infer_links(&conn, &observations);
        let at0 = links.links_at(IxpId(0));
        assert_eq!(at0.len(), 5);
        assert!(!at0.contains(&(Asn(1), Asn(3))));
    }

    #[test]
    fn empty_actions_mean_default_all() {
        let conn = conn_with(&[1, 2]);
        let observations = vec![obs(1, "10.1.0.0/24", vec![]), obs(2, "10.2.0.0/24", vec![])];
        let links = infer_links(&conn, &observations);
        assert!(links.links_at(IxpId(0)).contains(&(Asn(1), Asn(2))));
    }

    #[test]
    fn uncovered_members_produce_no_links() {
        let conn = conn_with(&[1, 2, 3]);
        // Only member 1 has reachability data.
        let observations = vec![obs(1, "10.1.0.0/24", vec![RsAction::All])];
        let links = infer_links(&conn, &observations);
        assert!(
            links.links_at(IxpId(0)).is_empty(),
            "reciprocity needs both sides covered"
        );
        assert_eq!(links.covered[&IxpId(0)].len(), 1);
    }

    #[test]
    fn per_prefix_intersection_is_conservative() {
        // Member 1 excludes 2 on ONE prefix only; N_1 = ⋂ drops 2.
        let conn = conn_with(&[1, 2]);
        let observations = vec![
            obs(1, "10.1.0.0/24", vec![RsAction::All]),
            obs(
                1,
                "10.9.0.0/24",
                vec![RsAction::All, RsAction::Exclude(Asn(2))],
            ),
            obs(2, "10.2.0.0/24", vec![RsAction::All]),
        ];
        let links = infer_links(&conn, &observations);
        assert!(
            links.links_at(IxpId(0)).is_empty(),
            "the §4.1 intersection drops peers excluded on any prefix"
        );
    }

    #[test]
    fn observations_for_unknown_members_dropped() {
        let conn = conn_with(&[1, 2]);
        let observations = vec![
            obs(1, "10.1.0.0/24", vec![]),
            obs(2, "10.2.0.0/24", vec![]),
            obs(99, "10.9.0.0/24", vec![]), // not in A_RS
        ];
        let links = infer_links(&conn, &observations);
        assert!(!links.covered[&IxpId(0)].contains(&Asn(99)));
        assert_eq!(links.links_at(IxpId(0)).len(), 1);
    }

    #[test]
    fn multi_ixp_overlap_accounting() {
        let mut conn = conn_with(&[1, 2]);
        conn.record(IxpId(1), Asn(1), ConnSource::Website);
        conn.record(IxpId(1), Asn(2), ConnSource::Website);
        let mut observations = vec![obs(1, "10.1.0.0/24", vec![]), obs(2, "10.2.0.0/24", vec![])];
        observations.push(Observation {
            ixp: IxpId(1),
            member: Asn(1),
            prefix: "10.1.0.0/24".parse().unwrap(),
            actions: vec![],
            source: ObservationSource::Passive,
        });
        observations.push(Observation {
            ixp: IxpId(1),
            member: Asn(2),
            prefix: "10.2.0.0/24".parse().unwrap(),
            actions: vec![],
            source: ObservationSource::Passive,
        });
        let links = infer_links(&conn, &observations);
        assert_eq!(links.per_ixp_total(), 2, "one link at each IXP");
        assert_eq!(links.unique_links().len(), 1, "same pair deduped");
        assert_eq!(links.overlap_links().len(), 1);
        assert_eq!(links.common_links(IxpId(0), IxpId(1)), 1);
        assert_eq!(links.distinct_asns().len(), 2);
    }

    #[test]
    fn policy_reconstruction_recorded() {
        let conn = conn_with(&[1, 2, 3]);
        let observations = vec![obs(
            1,
            "10.1.0.0/24",
            vec![RsAction::All, RsAction::Exclude(Asn(3))],
        )];
        let links = infer_links(&conn, &observations);
        assert_eq!(
            links.policies.get(&(IxpId(0), Asn(1))),
            Some(&ExportPolicy::AllExcept([Asn(3)].into_iter().collect()))
        );
    }

    #[test]
    fn default_policy_comes_from_smallest_prefix() {
        // Pushed out of sorted order: the reported policy must still be
        // the lexicographically-first prefix's, as the batch grouping
        // (BTreeMap iteration) produced.
        let conn = conn_with(&[1, 2, 3]);
        let observations = vec![
            obs(
                1,
                "10.9.0.0/24",
                vec![RsAction::All, RsAction::Exclude(Asn(3))],
            ),
            obs(1, "10.1.0.0/24", vec![RsAction::All]),
            obs(2, "10.2.0.0/24", vec![]),
        ];
        let links = infer_links(&conn, &observations);
        assert_eq!(
            links.policies.get(&(IxpId(0), Asn(1))),
            Some(&ExportPolicy::AllMembers),
            "10.1.0.0/24 sorts first"
        );
    }

    #[test]
    fn incremental_fold_matches_batch_and_merge_is_commutative() {
        let conn = conn_with(&[1, 2, 3, 4]);
        let observations = vec![
            obs(
                1,
                "10.1.0.0/24",
                vec![RsAction::All, RsAction::Exclude(Asn(3))],
            ),
            obs(1, "10.1.0.0/24", vec![RsAction::Exclude(Asn(4))]), // same prefix, more actions
            obs(2, "10.2.0.0/24", vec![]),
            obs(
                3,
                "10.3.0.0/24",
                vec![RsAction::None, RsAction::Include(Asn(2))],
            ),
            obs(4, "10.4.0.0/24", vec![RsAction::All]),
        ];
        let batch = infer_links(&conn, &observations);

        // Split the stream across two shard sinks, merge both ways.
        let (left, right) = observations.split_at(2);
        let mut shard_a = LinkInferencer::default();
        for o in left {
            shard_a.push(o.clone());
        }
        let mut shard_b = LinkInferencer::default();
        for o in right {
            shard_b.push(o.clone());
        }
        let mut ab = shard_a.clone();
        ab.merge(shard_b.clone());
        let mut ba = shard_b;
        ba.merge(shard_a);
        assert_eq!(ab.observation_count(), observations.len());
        assert_eq!(ab.finalize(&conn), batch);
        assert_eq!(ba.finalize(&conn), batch, "merge is commutative");
    }

    #[test]
    fn export_absorb_equals_in_process_merge() {
        let conn = conn_with(&[1, 2, 3, 4]);
        let observations = [
            obs(
                1,
                "10.1.0.0/24",
                vec![RsAction::All, RsAction::Exclude(Asn(3))],
            ),
            obs(1, "10.1.0.0/24", vec![RsAction::Exclude(Asn(4))]),
            obs(2, "10.2.0.0/24", vec![]),
            obs(
                3,
                "10.3.0.0/24",
                vec![RsAction::None, RsAction::Include(Asn(2))],
            ),
            obs(4, "10.4.0.0/24", vec![RsAction::All]),
        ];
        let (left, right) = observations.split_at(2);
        let mut shard_a = LinkInferencer::default();
        for o in left {
            shard_a.push(o.clone());
        }
        let mut shard_b = LinkInferencer::default();
        for o in right {
            shard_b.push(o.clone());
        }
        // In-process merge vs export → absorb round trip.
        let mut merged = shard_a.clone();
        merged.merge(shard_b.clone());
        let mut absorbed = LinkInferencer::default();
        absorbed.absorb_state(shard_a.export_state());
        absorbed.absorb_state(shard_b.export_state());
        assert_eq!(absorbed.observation_count(), merged.observation_count());
        assert_eq!(absorbed.finalize(&conn), merged.finalize(&conn));
        // Exported state is canonical: re-export of the absorbed state
        // equals export of the merged state regardless of intern order.
        assert_eq!(absorbed.export_state(), merged.export_state());
    }

    #[test]
    fn export_state_is_intern_order_independent() {
        let observations = vec![
            obs(2, "10.2.0.0/24", vec![RsAction::All]),
            obs(1, "10.1.0.0/24", vec![RsAction::Exclude(Asn(9))]),
            obs(1, "10.0.0.0/24", vec![]),
        ];
        let mut fwd = LinkInferencer::default();
        for o in &observations {
            fwd.push(o.clone());
        }
        let mut rev = LinkInferencer::default();
        for o in observations.iter().rev() {
            rev.push(o.clone());
        }
        assert_eq!(fwd.export_state(), rev.export_state());
        let e = &fwd.export_state().entries[0];
        assert_eq!(
            (e.member, e.prefix.to_string().as_str()),
            (Asn(1), "10.0.0.0/24")
        );
    }

    #[test]
    fn member_count_tracks_distinct_pairs() {
        let mut sink = LinkInferencer::default();
        sink.push(obs(1, "10.1.0.0/24", vec![]));
        sink.push(obs(1, "10.2.0.0/24", vec![]));
        sink.push(obs(2, "10.1.0.0/24", vec![]));
        assert_eq!(sink.observation_count(), 3);
        assert_eq!(sink.member_count(), 2);
    }
}
