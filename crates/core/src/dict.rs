//! The RS community dictionary (§3, §4.2).
//!
//! IXPs "clearly document the usage of their community values in IRR
//! records or support pages"; the dictionary collects those documented
//! schemes and answers the two questions passive inference must solve
//! for every community set it encounters:
//!
//! 1. **Which IXP** set these values? Usually the RS ASN appears in the
//!    upper or lower 16 bits; when a member omits the redundant `ALL`
//!    and only bare `0:peer-asn` EXCLUDEs remain, the IXP is identified
//!    by finding the *one* route server where all the excluded ASes are
//!    members ("often the combination of ASes is only found at a single
//!    IXP").
//! 2. **What actions** do they encode (ALL / EXCLUDE / NONE / INCLUDE)?

use std::collections::BTreeSet;

use mlpeer_bgp::{Asn, Community, CommunitySet};
use mlpeer_ixp::ixp::IxpId;
use mlpeer_ixp::scheme::{CommunityScheme, RsAction};

/// One IXP's documented scheme plus the RS-member set used for
/// EXCLUDE-combination disambiguation (from connectivity data).
#[derive(Debug, Clone)]
pub struct DictEntry {
    /// The IXP.
    pub ixp: IxpId,
    /// Human name for reports.
    pub name: String,
    /// The documented scheme.
    pub scheme: CommunityScheme,
    /// Known RS members (possibly partial, e.g. LINX).
    pub rs_members: BTreeSet<Asn>,
}

/// The dictionary across all studied IXPs.
#[derive(Debug, Clone, Default)]
pub struct CommunityDictionary {
    entries: Vec<DictEntry>,
}

/// Result of identifying a community set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Identified {
    /// The IXP the values belong to.
    pub ixp: IxpId,
    /// The decoded actions.
    pub actions: Vec<RsAction>,
}

impl CommunityDictionary {
    /// Build from entries.
    pub fn new(entries: Vec<DictEntry>) -> Self {
        CommunityDictionary { entries }
    }

    /// Entries, in insertion order.
    pub fn entries(&self) -> &[DictEntry] {
        &self.entries
    }

    /// The entry for an IXP.
    pub fn entry(&self, ixp: IxpId) -> Option<&DictEntry> {
        self.entries.iter().find(|e| e.ixp == ixp)
    }

    /// All interpretations of one community across all schemes.
    pub fn classify(&self, c: Community) -> Vec<(IxpId, RsAction)> {
        self.entries
            .iter()
            .filter_map(|e| e.scheme.decode(c).map(|a| (e.ixp, a)))
            .collect()
    }

    /// Identify which IXP a community set was tagged for, and decode its
    /// actions (§4.2). Returns `None` when nothing matches or the set
    /// stays ambiguous across multiple IXPs.
    pub fn identify(&self, set: &CommunitySet) -> Option<Identified> {
        if set.is_empty() {
            return None;
        }
        // Pass 1: a value that *mentions* the RS ASN (ALL, NONE,
        // INCLUDE) pins the IXP — but only count values that actually
        // decode under that scheme.
        let mut strong: Vec<&DictEntry> = Vec::new();
        for e in &self.entries {
            let pins = set
                .iter()
                .any(|c| e.scheme.mentions_rs(c) && e.scheme.decode(c).is_some());
            if pins {
                strong.push(e);
            }
        }
        if strong.len() == 1 {
            let e = strong[0];
            return Some(Identified {
                ixp: e.ixp,
                actions: decode_all(e, set),
            });
        }
        if strong.len() > 1 {
            // Extremely rare collision (one IXP's ALL is another's
            // INCLUDE): prefer the entry decoding the most values, then
            // the one whose decoded peers are all members.
            let best = strong
                .into_iter()
                .max_by_key(|e| {
                    let decoded = decode_all(e, set);
                    let member_ok = decoded.iter().all(|a| match a {
                        RsAction::Exclude(p) | RsAction::Include(p) => e.rs_members.contains(p),
                        _ => true,
                    });
                    (
                        decoded.len(),
                        member_ok as usize,
                        std::cmp::Reverse(e.ixp.0),
                    )
                })
                .expect("non-empty");
            return Some(Identified {
                ixp: best.ixp,
                actions: decode_all(best, set),
            });
        }
        // Pass 2: bare EXCLUDE lists (`0:peer-asn`, or offset excludes).
        // Disambiguate by the member-combination rule.
        let mut candidates: Vec<(&DictEntry, Vec<RsAction>)> = Vec::new();
        for e in &self.entries {
            let actions = decode_all(e, set);
            if actions.is_empty() {
                continue;
            }
            // Every decoded EXCLUDE/INCLUDE peer must be a known member.
            let peers: Vec<Asn> = actions
                .iter()
                .filter_map(|a| match a {
                    RsAction::Exclude(p) | RsAction::Include(p) => Some(*p),
                    _ => None,
                })
                .collect();
            if peers.is_empty() {
                continue;
            }
            if peers.iter().all(|p| e.rs_members.contains(p)) {
                candidates.push((e, actions));
            }
        }
        match candidates.len() {
            1 => {
                let (e, actions) = candidates.into_iter().next().expect("len checked");
                Some(Identified {
                    ixp: e.ixp,
                    actions,
                })
            }
            _ => None, // unidentifiable or ambiguous
        }
    }
}

fn decode_all(e: &DictEntry, set: &CommunitySet) -> Vec<RsAction> {
    set.iter().filter_map(|c| e.scheme.decode(c)).collect()
}

/// Build the dictionary straight from an ecosystem's *documentation* —
/// the schemes every IXP publishes — plus connectivity data for the
/// member sets. (The member sets come from [`crate::connectivity`]; this
/// helper wires them together.)
pub fn dictionary_from_connectivity(
    eco: &mlpeer_ixp::Ecosystem,
    conn: &crate::connectivity::ConnectivityData,
) -> CommunityDictionary {
    let entries = eco
        .ixps
        .iter()
        .map(|x| DictEntry {
            ixp: x.id,
            name: x.name.clone(),
            scheme: x.scheme.clone(),
            rs_members: conn.rs_members(x.id),
        })
        .collect();
    CommunityDictionary::new(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpeer_ixp::scheme::SchemeStyle;

    fn entry(id: u16, rs: u32, members: &[u32]) -> DictEntry {
        let mut scheme = CommunityScheme::new(Asn(rs), SchemeStyle::AsnBased);
        for &m in members {
            scheme.register_member(Asn(m));
        }
        DictEntry {
            ixp: IxpId(id),
            name: format!("IXP-{id}"),
            scheme,
            rs_members: members.iter().map(|&m| Asn(m)).collect(),
        }
    }

    fn dict() -> CommunityDictionary {
        // DE-CIX-like (6695) with members 8359, 8447, 5410;
        // MSK-IX-like (8631) with members 2854, 8359.
        CommunityDictionary::new(vec![
            entry(0, 6695, &[8359, 8447, 5410]),
            entry(1, 8631, &[2854, 8359]),
        ])
    }

    fn cs(s: &str) -> CommunitySet {
        s.parse().unwrap()
    }

    #[test]
    fn identifies_by_rs_asn_mention() {
        let d = dict();
        // Fig. 2(a): NONE + INCLUDEs pin DE-CIX by 6695.
        let got = d.identify(&cs("0:6695 6695:8359 6695:8447")).unwrap();
        assert_eq!(got.ixp, IxpId(0));
        assert_eq!(got.actions.len(), 3);
        assert!(got.actions.contains(&RsAction::None));
        assert!(got.actions.contains(&RsAction::Include(Asn(8359))));
        // ALL value alone pins MSK-IX.
        let got = d.identify(&cs("8631:8631")).unwrap();
        assert_eq!(got.ixp, IxpId(1));
        assert_eq!(got.actions, vec![RsAction::All]);
    }

    #[test]
    fn bare_excludes_disambiguated_by_member_combination() {
        let d = dict();
        // 0:8447 and 0:5410: both members only at IXP 0.
        let got = d.identify(&cs("0:8447 0:5410")).unwrap();
        assert_eq!(got.ixp, IxpId(0));
        // Actions come back in community-value order (0:5410 < 0:8447).
        assert_eq!(
            got.actions,
            vec![RsAction::Exclude(Asn(5410)), RsAction::Exclude(Asn(8447))]
        );
        // 0:2854: only a member at IXP 1.
        let got = d.identify(&cs("0:2854")).unwrap();
        assert_eq!(got.ixp, IxpId(1));
    }

    #[test]
    fn ambiguous_bare_exclude_returns_none() {
        let d = dict();
        // 8359 is a member at BOTH IXPs: 0:8359 alone is ambiguous.
        assert_eq!(d.identify(&cs("0:8359")), None);
        // But combined with a value pinning DE-CIX it resolves.
        let got = d.identify(&cs("0:8359 6695:6695")).unwrap();
        assert_eq!(got.ixp, IxpId(0));
        assert!(got.actions.contains(&RsAction::Exclude(Asn(8359))));
        assert!(got.actions.contains(&RsAction::All));
    }

    /// §4.2's combination rule, exhaustively: a bare EXCLUDE list
    /// identifies an IXP only when the *set* of excluded members exists
    /// at exactly one route server. Members 8359 and 9002 are both at
    /// IXP 0 *and* IXP 1, so any combination drawn from {8359, 9002}
    /// stays ambiguous — even though each value decodes under both
    /// schemes — while one member unique to an IXP resolves the whole
    /// combination.
    #[test]
    fn exclude_combination_rule_across_two_ixps() {
        let d = CommunityDictionary::new(vec![
            entry(0, 6695, &[8359, 9002, 5410]),
            entry(1, 8631, &[8359, 9002, 2854]),
        ]);
        // Single shared member: ambiguous.
        assert_eq!(d.identify(&cs("0:8359")), None);
        // A combination of members shared by both IXPs: still ambiguous.
        assert_eq!(
            d.identify(&cs("0:8359 0:9002")),
            None,
            "set {{8359, 9002}} is at both IXPs"
        );
        // Adding a member unique to IXP 0 makes the combination unique.
        let got = d.identify(&cs("0:8359 0:9002 0:5410")).unwrap();
        assert_eq!(got.ixp, IxpId(0));
        assert_eq!(
            got.actions,
            vec![
                RsAction::Exclude(Asn(5410)),
                RsAction::Exclude(Asn(8359)),
                RsAction::Exclude(Asn(9002)),
            ]
        );
        // The mirror case resolves to IXP 1.
        let got = d.identify(&cs("0:8359 0:2854")).unwrap();
        assert_eq!(got.ixp, IxpId(1));
        // A combination mixing members that never share a route server
        // matches no single IXP at all.
        assert_eq!(
            d.identify(&cs("0:5410 0:2854")),
            None,
            "no RS hosts both 5410 and 2854"
        );
    }

    #[test]
    fn foreign_communities_unidentified() {
        let d = dict();
        assert_eq!(d.identify(&cs("3356:100 1299:20")), None);
        assert_eq!(d.identify(&CommunitySet::new()), None);
        // Unknown peer in a bare exclude: not a member anywhere.
        assert_eq!(d.identify(&cs("0:64000")), None);
    }

    #[test]
    fn classify_lists_all_interpretations() {
        let d = dict();
        let v = d.classify("0:8359".parse().unwrap());
        assert_eq!(
            v.len(),
            2,
            "bare exclude decodes under both ASN-based schemes"
        );
        let v = d.classify("6695:6695".parse().unwrap());
        assert_eq!(v, vec![(IxpId(0), RsAction::All)]);
    }

    #[test]
    fn entry_lookup() {
        let d = dict();
        assert!(d.entry(IxpId(0)).is_some());
        assert!(d.entry(IxpId(9)).is_none());
        assert_eq!(d.entries().len(), 2);
    }
}
