//! Connectivity acquisition (§4): which ASes session with each route
//! server (`A_RS`).
//!
//! Three public sources, in the paper's reliability order:
//!
//! 1. **looking glasses** onto route servers (`show ip bgp summary`) —
//!    "the most reliable as it explicitly reports the status of the
//!    route server routing table";
//! 2. **RPSL AS-SETs** registered in the IRR;
//! 3. **IXP websites** listing connected networks.
//!
//! LINX publishes neither a member list nor an AS-SET (Table 2's
//! asterisk); its RS membership is partially recovered by searching
//! member aut-num records for export lines toward the RS ASN.

use std::collections::{BTreeMap, BTreeSet};

use mlpeer_bgp::Asn;
use mlpeer_data::irr::{IrrDatabase, Source};
use mlpeer_data::lg::{parse_summary, LgCommand, LgTarget, LookingGlassHost};
use mlpeer_data::Sim;
use mlpeer_ixp::ixp::IxpId;

/// Where a connectivity fact came from (kept for provenance reports).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ConnSource {
    /// RS looking-glass summary.
    LookingGlass,
    /// IRR AS-SET membership.
    IrrAsSet,
    /// IXP website member list.
    Website,
    /// Recovered from aut-num export lines (the LINX trick).
    IrrAutNum,
}

/// Connectivity data: per IXP, the RS members with the best source each
/// was learned from.
#[derive(Debug, Clone, Default)]
pub struct ConnectivityData {
    per_ixp: BTreeMap<IxpId, BTreeMap<Asn, ConnSource>>,
}

impl ConnectivityData {
    /// The RS members known at an IXP.
    pub fn rs_members(&self, ixp: IxpId) -> BTreeSet<Asn> {
        self.per_ixp
            .get(&ixp)
            .map(|m| m.keys().copied().collect())
            .unwrap_or_default()
    }

    /// How a member was learned (best source).
    pub fn source_of(&self, ixp: IxpId, asn: Asn) -> Option<ConnSource> {
        self.per_ixp.get(&ixp)?.get(&asn).copied()
    }

    /// Number of known RS members at an IXP.
    pub fn member_count(&self, ixp: IxpId) -> usize {
        self.per_ixp.get(&ixp).map(BTreeMap::len).unwrap_or(0)
    }

    /// Record a member, keeping the more reliable source on conflict.
    pub fn record(&mut self, ixp: IxpId, asn: Asn, source: ConnSource) {
        let slot = self
            .per_ixp
            .entry(ixp)
            .or_default()
            .entry(asn)
            .or_insert(source);
        if source < *slot {
            *slot = source;
        }
    }

    /// IXPs with any data.
    pub fn ixps(&self) -> Vec<IxpId> {
        self.per_ixp.keys().copied().collect()
    }
}

/// Gather connectivity from every available source.
///
/// * every RS looking glass in `lgs` is queried for its summary;
/// * every `AS-<IXP>-RS` AS-SET in the registries is resolved;
/// * every member-list-publishing IXP's website is read;
/// * for list-less IXPs (LINX), aut-num export lines toward the RS ASN
///   are searched.
pub fn gather_connectivity(
    sim: &Sim,
    lgs: &[LookingGlassHost],
    irr: &BTreeMap<Source, IrrDatabase>,
) -> ConnectivityData {
    let mut out = ConnectivityData::default();

    // 1. Looking glasses (most reliable): where an RS LG answers, its
    //    summary *defines* the membership — "it explicitly reports the
    //    status of the route server routing table" — and the weaker
    //    sources are not consulted for that IXP.
    let mut lg_covered: BTreeSet<IxpId> = BTreeSet::new();
    for lg in lgs {
        if let LgTarget::RouteServer(ixp) = lg.target {
            let text = lg.query(sim, &LgCommand::Summary);
            for (asn, _addr, _pfx) in parse_summary(&text) {
                out.record(ixp, asn, ConnSource::LookingGlass);
            }
            lg_covered.insert(ixp);
        }
    }

    // 2. IRR AS-SETs.
    for ixp in &sim.eco.ixps {
        if lg_covered.contains(&ixp.id) {
            continue;
        }
        let set_name = format!("AS-{}-RS", ixp.name.to_uppercase().replace(['-', '.'], ""));
        for db in irr.values() {
            for asn in db.resolve_as_set(&set_name) {
                out.record(ixp.id, asn, ConnSource::IrrAsSet);
            }
        }
    }

    // 3. IXP websites (member lists).
    for ixp in &sim.eco.ixps {
        if lg_covered.contains(&ixp.id) {
            continue;
        }
        if ixp.publishes_member_list {
            for asn in ixp.rs_member_asns() {
                out.record(ixp.id, asn, ConnSource::Website);
            }
        }
    }

    // 4. The LINX recovery: aut-num exports toward the RS ASN, for IXPs
    //    with neither website list nor AS-SET data.
    for ixp in &sim.eco.ixps {
        if !ixp.publishes_member_list {
            for db in irr.values() {
                for asn in db.ases_exporting_to(ixp.route_server.asn) {
                    out.record(ixp.id, asn, ConnSource::IrrAutNum);
                }
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpeer_data::irr::{build_irr, IrrConfig};
    use mlpeer_data::lg::{build_lg_roster, LgDisplay};
    use mlpeer_ixp::{Ecosystem, EcosystemConfig};

    fn setup() -> (Ecosystem, BTreeMap<Source, IrrDatabase>) {
        let eco = Ecosystem::generate(EcosystemConfig::tiny(71));
        let irr = build_irr(&eco, &IrrConfig::default());
        (eco, irr)
    }

    #[test]
    fn lg_backed_ixps_have_exact_membership() {
        let (eco, irr) = setup();
        let sim = Sim::new(&eco);
        let lgs = build_lg_roster(&sim, 1, 0, 0.0);
        let conn = gather_connectivity(&sim, &lgs, &irr);
        for ixp in &eco.ixps {
            if ixp.has_lg {
                let truth: BTreeSet<Asn> = ixp.rs_member_asns().into_iter().collect();
                assert_eq!(
                    conn.rs_members(ixp.id),
                    truth,
                    "{} via LG is exact",
                    ixp.name
                );
                // LG is recorded as the winning source.
                let m = *truth.iter().next().unwrap();
                assert_eq!(conn.source_of(ixp.id, m), Some(ConnSource::LookingGlass));
            }
        }
    }

    #[test]
    fn linx_membership_partial_but_sound() {
        let (eco, irr) = setup();
        let sim = Sim::new(&eco);
        let conn = gather_connectivity(&sim, &[], &irr);
        let linx = eco.ixp_by_name("LINX").unwrap();
        let known = conn.rs_members(linx.id);
        let truth: BTreeSet<Asn> = linx.rs_member_asns().into_iter().collect();
        assert!(
            !known.is_empty(),
            "aut-num search recovers some LINX members"
        );
        assert!(known.is_subset(&truth), "no false LINX members");
        assert!(known.len() <= truth.len());
        let m = *known.iter().next().unwrap();
        assert_eq!(conn.source_of(linx.id, m), Some(ConnSource::IrrAutNum));
    }

    #[test]
    fn as_set_and_website_agree_mostly() {
        let (eco, irr) = setup();
        let sim = Sim::new(&eco);
        let conn = gather_connectivity(&sim, &[], &irr);
        let decix = eco.ixp_by_name("DE-CIX").unwrap();
        let known = conn.rs_members(decix.id);
        let truth: BTreeSet<Asn> = decix.rs_member_asns().into_iter().collect();
        // Website gives the full truth; AS-SET may add a few stale
        // entries.
        assert!(known.is_superset(&truth));
        let extra = known.difference(&truth).count();
        assert!(extra <= truth.len() / 5, "stale extras bounded: {extra}");
    }

    #[test]
    fn source_priority_prefers_lg() {
        let mut conn = ConnectivityData::default();
        conn.record(IxpId(0), Asn(1), ConnSource::Website);
        conn.record(IxpId(0), Asn(1), ConnSource::LookingGlass);
        assert_eq!(
            conn.source_of(IxpId(0), Asn(1)),
            Some(ConnSource::LookingGlass)
        );
        conn.record(IxpId(0), Asn(1), ConnSource::IrrAsSet);
        assert_eq!(
            conn.source_of(IxpId(0), Asn(1)),
            Some(ConnSource::LookingGlass),
            "worse source never downgrades"
        );
        assert_eq!(conn.member_count(IxpId(0)), 1);
        assert_eq!(conn.ixps(), vec![IxpId(0)]);
    }

    #[test]
    fn member_lgs_do_not_pollute_connectivity() {
        let (eco, irr) = setup();
        let sim = Sim::new(&eco);
        let member_lg = LookingGlassHost::new(
            "lg.member",
            LgTarget::Member(*eco.all_rs_member_asns().iter().next().unwrap()),
            LgDisplay::AllPaths,
        );
        let conn = gather_connectivity(&sim, std::slice::from_ref(&member_lg), &irr);
        // Member LG summaries list route servers, not members; nothing
        // from them must be recorded as LookingGlass-sourced.
        for ixp in conn.ixps() {
            for m in conn.rs_members(ixp) {
                assert_ne!(conn.source_of(ixp, m), Some(ConnSource::LookingGlass));
            }
        }
    }
}
