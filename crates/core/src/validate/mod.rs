//! Link validation against public looking glasses (§5.1).
//!
//! For every inferred link relevant to an available LG — the LG fronts
//! one of the link's endpoints (or a customer of one) — query up to six
//! geographically diverse prefixes announced by the far endpoint and
//! look for the link in the returned AS paths. A link can fail to
//! validate without being wrong: best-path-only LGs hide RS routes
//! behind higher-local-pref alternatives (bilateral peers, customer
//! routes), and a few route servers leave their ASN in the path; both
//! artifacts are classified rather than counted as refutations.
//!
//! The sibling [`cross`] module is the *offline* counterpart: instead
//! of live LG queries it scores every inferred link against a
//! registry-shaped IRR/RPKI corpus.

pub mod cross;

use std::collections::{BTreeMap, BTreeSet};

use mlpeer_bgp::{Asn, Prefix};
use mlpeer_data::geo::GeoDb;
use mlpeer_data::lg::{parse_prefix_output, LgCommand, LgDisplay, LgTarget, LookingGlassHost};
use mlpeer_data::Sim;
use mlpeer_ixp::ixp::IxpId;

use crate::infer::MlpLinkSet;

/// Validation parameters (§5.1 defaults).
#[derive(Debug, Clone)]
pub struct ValidationConfig {
    /// Prefixes queried per link (the paper uses up to six,
    /// geographically diverse).
    pub prefixes_per_link: usize,
    /// Cap on links tested per LG (keeps the campaign polite).
    pub max_links_per_lg: usize,
}

impl Default for ValidationConfig {
    fn default() -> Self {
        ValidationConfig {
            prefixes_per_link: 6,
            max_links_per_lg: 600,
        }
    }
}

/// Per-LG outcome (one dot of Fig. 8).
#[derive(Debug, Clone, PartialEq)]
pub struct LgOutcome {
    /// LG name.
    pub name: String,
    /// The AS whose router the LG fronts.
    pub asn: Asn,
    /// Display mode (the Fig. 8 circle/triangle split).
    pub display: LgDisplay,
    /// Links tested.
    pub tested: usize,
    /// Links confirmed.
    pub confirmed: usize,
}

impl LgOutcome {
    /// Confirmed fraction.
    pub fn frac(&self) -> f64 {
        if self.tested == 0 {
            1.0
        } else {
            self.confirmed as f64 / self.tested as f64
        }
    }
}

/// Campaign outcome.
#[derive(Debug, Clone, Default)]
pub struct ValidationReport {
    /// Per-LG results.
    pub per_lg: Vec<LgOutcome>,
    /// Per-IXP `(tested, confirmed)` (Table 3 rows).
    pub per_ixp: BTreeMap<IxpId, (usize, usize)>,
    /// Distinct links tested.
    pub links_tested: usize,
    /// Distinct links confirmed.
    pub links_confirmed: usize,
}

impl ValidationReport {
    /// Overall confirmation rate.
    pub fn confirm_rate(&self) -> f64 {
        if self.links_tested == 0 {
            1.0
        } else {
            self.links_confirmed as f64 / self.links_tested as f64
        }
    }
}

/// Does a parsed LG path witness the link `a–b`? Adjacency is checked
/// after removing any known route-server ASNs from the path (3 of the
/// paper's 70 LGs showed the RS ASN inline).
fn path_witnesses(path: &[Asn], a: Asn, b: Asn, rs_asns: &BTreeSet<Asn>) -> bool {
    let cleaned: Vec<Asn> = path
        .iter()
        .copied()
        .filter(|x| !rs_asns.contains(x))
        .collect();
    cleaned
        .windows(2)
        .any(|w| (w[0] == a && w[1] == b) || (w[0] == b && w[1] == a))
}

/// Run the validation campaign.
pub fn validate_links(
    sim: &Sim,
    links: &MlpLinkSet,
    lgs: &[LookingGlassHost],
    geo: &GeoDb,
    cfg: &ValidationConfig,
) -> ValidationReport {
    let rs_asns: BTreeSet<Asn> = sim.eco.ixps.iter().map(|x| x.route_server.asn).collect();
    let mut report = ValidationReport::default();
    let mut tested_links: BTreeSet<(Asn, Asn)> = BTreeSet::new();
    let mut confirmed_links: BTreeSet<(Asn, Asn)> = BTreeSet::new();
    // Per-IXP distinct accounting: a link is confirmed if *any* LG
    // witnesses it.
    let mut ixp_tested: BTreeMap<IxpId, BTreeSet<(Asn, Asn)>> = BTreeMap::new();
    let mut ixp_confirmed: BTreeMap<IxpId, BTreeSet<(Asn, Asn)>> = BTreeMap::new();

    for lg in lgs {
        let LgTarget::Member(host) = lg.target else {
            continue;
        };
        // Links relevant to this LG: the host (or its providers — the
        // host being a customer of an endpoint) is an endpoint.
        let mut relevant: Vec<(IxpId, Asn, Asn)> = Vec::new();
        let uplinks: BTreeSet<Asn> = sim
            .eco
            .internet
            .graph
            .providers_of(host)
            .into_iter()
            .collect();
        for (ixp, set) in &links.per_ixp {
            for &(a, b) in set {
                let endpoint = if a == host || uplinks.contains(&a) {
                    Some((a, b))
                } else if b == host || uplinks.contains(&b) {
                    Some((b, a))
                } else {
                    None
                };
                if let Some((near, far)) = endpoint {
                    relevant.push((*ixp, near, far));
                }
            }
        }
        relevant.truncate(cfg.max_links_per_lg);
        let mut outcome = LgOutcome {
            name: lg.name.clone(),
            asn: host,
            display: lg.display,
            tested: 0,
            confirmed: 0,
        };
        for (ixp, near, far) in relevant {
            // Prefixes announced by the far endpoint at this IXP,
            // geographically diversified (§5.1).
            let candidates: Vec<Prefix> = sim
                .eco
                .ixp(ixp)
                .member(far)
                .map(|m| m.prefixes().collect())
                .unwrap_or_default();
            let picks = geo.diverse_pick(&candidates, cfg.prefixes_per_link);
            if picks.is_empty() {
                continue;
            }
            outcome.tested += 1;
            let key = if near < far { (near, far) } else { (far, near) };
            tested_links.insert(key);
            let mut ok = false;
            for prefix in picks {
                let text = lg.query(sim, &LgCommand::Prefix(prefix));
                for path in parse_prefix_output(&text) {
                    // The LG host itself is implicit at the front.
                    let mut full = vec![host];
                    full.extend(path.as_path.to_vec());
                    if path_witnesses(&full, near, far, &rs_asns) {
                        ok = true;
                        break;
                    }
                }
                if ok {
                    break;
                }
            }
            ixp_tested.entry(ixp).or_default().insert(key);
            if ok {
                outcome.confirmed += 1;
                confirmed_links.insert(key);
                ixp_confirmed.entry(ixp).or_default().insert(key);
            }
        }
        if outcome.tested > 0 {
            report.per_lg.push(outcome);
        }
    }
    for (ixp, tested) in &ixp_tested {
        let confirmed = ixp_confirmed.get(ixp).map(BTreeSet::len).unwrap_or(0);
        report.per_ixp.insert(*ixp, (tested.len(), confirmed));
    }
    report.links_tested = tested_links.len();
    report.links_confirmed = confirmed_links.len();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::active::{query_rs_lg, ActiveConfig};
    use crate::connectivity::gather_connectivity;
    use crate::dict::dictionary_from_connectivity;
    use crate::infer::infer_links;
    use mlpeer_data::irr::{build_irr, IrrConfig};
    use mlpeer_data::lg::build_lg_roster;
    use mlpeer_ixp::{Ecosystem, EcosystemConfig};

    fn inferred(eco: &Ecosystem) -> (Sim<'_>, MlpLinkSet) {
        let sim = Sim::new(eco);
        let irr = build_irr(eco, &IrrConfig::default());
        let lgs = build_lg_roster(&sim, 1, 0, 0.0);
        let conn = gather_connectivity(&sim, &lgs, &irr);
        let dict = dictionary_from_connectivity(eco, &conn);
        let mut observations = Vec::new();
        for lg in &lgs {
            if let LgTarget::RouteServer(id) = lg.target {
                query_rs_lg(
                    &sim,
                    lg,
                    id,
                    &dict,
                    &BTreeSet::new(),
                    &ActiveConfig::default(),
                    &mut observations,
                );
            }
        }
        let links = infer_links(&conn, &observations);
        (sim, links)
    }

    #[test]
    fn path_witness_handles_rs_asn_artifact() {
        let rs: BTreeSet<Asn> = [Asn(6695)].into_iter().collect();
        assert!(path_witnesses(
            &[Asn(1), Asn(2), Asn(3)],
            Asn(2),
            Asn(3),
            &rs
        ));
        assert!(path_witnesses(
            &[Asn(1), Asn(2), Asn(3)],
            Asn(3),
            Asn(2),
            &rs
        ));
        assert!(!path_witnesses(
            &[Asn(1), Asn(2), Asn(3)],
            Asn(1),
            Asn(3),
            &rs
        ));
        // RS ASN inline: 2–6695–3 still witnesses 2–3.
        assert!(path_witnesses(
            &[Asn(2), Asn(6695), Asn(3)],
            Asn(2),
            Asn(3),
            &rs
        ));
    }

    #[test]
    fn campaign_confirms_overwhelming_majority() {
        let eco = Ecosystem::generate(EcosystemConfig::tiny(13));
        let (sim, links) = inferred(&eco);
        assert!(!links.unique_links().is_empty());
        let geo = GeoDb::build(&eco);
        let lgs = build_lg_roster(&sim, 7, 14, 0.25);
        let member_lgs: Vec<LookingGlassHost> = lgs
            .into_iter()
            .filter(|l| matches!(l.target, LgTarget::Member(_)))
            .collect();
        let report = validate_links(&sim, &links, &member_lgs, &geo, &Default::default());
        assert!(report.links_tested > 0, "some links must be testable");
        let rate = report.confirm_rate();
        assert!(
            rate > 0.9,
            "validation rate {rate:.3} should be high (paper: 98.4 %)"
        );
        // Per-IXP counts are consistent.
        for (ixp, (tested, confirmed)) in &report.per_ixp {
            assert!(confirmed <= tested, "{ixp:?}");
        }
    }

    #[test]
    fn best_only_lgs_confirm_no_more_than_all_paths() {
        let eco = Ecosystem::generate(EcosystemConfig::tiny(13));
        let (sim, links) = inferred(&eco);
        let geo = GeoDb::build(&eco);
        // Same hosts, two display modes.
        let hosts: Vec<Asn> = sim.eco.all_rs_member_asns().into_iter().take(8).collect();
        let mk = |display| -> Vec<LookingGlassHost> {
            hosts
                .iter()
                .map(|&a| {
                    LookingGlassHost::new(
                        format!("lg.{a}.{display:?}"),
                        LgTarget::Member(a),
                        display,
                    )
                })
                .collect()
        };
        let all = validate_links(
            &sim,
            &links,
            &mk(LgDisplay::AllPaths),
            &geo,
            &Default::default(),
        );
        let best = validate_links(
            &sim,
            &links,
            &mk(LgDisplay::BestOnly),
            &geo,
            &Default::default(),
        );
        assert!(
            best.links_confirmed <= all.links_confirmed,
            "best-path LGs hide less-preferred links (Fig. 8): {} vs {}",
            best.links_confirmed,
            all.links_confirmed
        );
    }
}
