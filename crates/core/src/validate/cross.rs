//! Offline IRR/RPKI cross-validation: score every inferred multilateral
//! link against a registry-shaped ground-truth corpus (§6).
//!
//! The paper validates inferred IXP peering links against external
//! ground truth — IRR route objects and looking glasses. The LG
//! campaign lives in the parent module; this one closes the remaining
//! gap with a fully offline stage in three steps:
//!
//! 1. **derive** — [`derive_corpus`] renders an IRR/RPKI corpus from
//!    the ecosystem: per-IXP registration headers, RPSL `as-set` /
//!    `aut-num` / `route` objects ([`RpslObject`]) and RPKI ROAs
//!    ([`Roa`]), with seeded noise (stale registrations, missing
//!    coverage, contradicting origins, flipped policy lines) so the
//!    registry is *imperfect* the way real ones are. Every block
//!    carries a `sig:` integrity line and the stream ends in an `end:`
//!    trailer with object counts.
//! 2. **parse** — [`parse_corpus`] reads the text back, quarantining
//!    any block whose signature does not verify and refusing to call a
//!    stream `complete` unless the trailer's counts reconcile. A
//!    degraded corpus (anything quarantined, or incomplete) can still
//!    contradict a link but can never confirm one.
//! 3. **score** — [`score_links`] assigns each inferred link a
//!    [`Verdict`] (`confirmed | unknown | contradicted`) with a
//!    [`Reason`] code, folding per-endpoint origin validation (RFC 6811
//!    over the ROAs, route-object origin matching) together with
//!    aut-num policy filters and as-set registration.
//!
//! The whole stage is a pure function of `(ecosystem, links,
//! observations)` — no clocks, no RNG state — so serial, thread-sharded
//! and multi-process harvests produce byte-identical
//! [`ValidationReport`]s.

use std::collections::{BTreeMap, BTreeSet};
use std::hash::Hasher;

use mlpeer_bgp::{Asn, Prefix};
use mlpeer_data::irr::{IrrDatabase, PolicyLine, RpslObject, Source};
use mlpeer_data::roa::{Roa, RoaOutcome, RoaTable};
use mlpeer_ixp::ixp::IxpId;
use mlpeer_ixp::Ecosystem;

use crate::hash::{FxHashMap, FxHashSet, FxHasher};
use crate::index::Announcement;
use crate::infer::{MlpLinkSet, Observation};

/// Noise knobs for corpus derivation. All decisions are hash-seeded —
/// the same config always yields the same corpus text.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Seed folded into every noise decision.
    pub seed: u64,
    /// Fraction of (IXP, member) registrations that went stale: the
    /// member is dropped from the IXP's as-set *and* loses its RS
    /// policy lines there.
    pub stale_registration: f64,
    /// Fraction of members that maintain per-peer IRR filters
    /// (truthful `import:`/`export:` lines toward each RS peer).
    pub filter_frac: f64,
    /// Fraction of per-peer filter lines flipped (allow↔deny) —
    /// the registry lying about policy.
    pub policy_flip: f64,
    /// Fraction of (prefix, origin) pairs missing their route object.
    pub route_missing: f64,
    /// Fraction of route objects registered with a wrong origin.
    pub route_contradict: f64,
    /// Fraction of (prefix, origin) pairs with no ROA issued.
    pub roa_missing: f64,
    /// Fraction of ROAs past their validity window.
    pub roa_expired: f64,
    /// Fraction of ROAs authorizing a wrong origin.
    pub roa_contradict: f64,
}

impl CorpusConfig {
    /// Paper-flavored defaults under an explicit seed: registries are
    /// mostly right, wrong in every way they can be.
    pub fn seeded(seed: u64) -> CorpusConfig {
        CorpusConfig {
            seed,
            stale_registration: 0.03,
            filter_frac: 0.35,
            policy_flip: 0.02,
            route_missing: 0.08,
            route_contradict: 0.02,
            roa_missing: 0.15,
            roa_expired: 0.03,
            roa_contradict: 0.01,
        }
    }
}

impl Default for CorpusConfig {
    fn default() -> CorpusConfig {
        CorpusConfig::seeded(99)
    }
}

// Salt tags keeping the independent noise decisions independent.
const TAG_STALE: u64 = 1;
const TAG_FILTER: u64 = 2;
const TAG_FLIP_EXPORT: u64 = 3;
const TAG_FLIP_IMPORT: u64 = 4;
const TAG_ROUTE_MISS: u64 = 5;
const TAG_ROUTE_WRONG: u64 = 6;
const TAG_ROA_MISS: u64 = 7;
const TAG_ROA_EXPIRE: u64 = 8;
const TAG_ROA_WRONG: u64 = 9;

/// A seeded coin: true with probability `frac`, fully determined by
/// `(seed, tag, x, y)`.
fn chance(seed: u64, tag: u64, x: u64, y: u64, frac: f64) -> bool {
    let mut h = FxHasher::default();
    h.write_u64(seed);
    h.write_u64(tag);
    h.write_u64(x);
    h.write_u64(y);
    ((h.finish() >> 16) % 1_000_000) < (frac * 1_000_000.0) as u64
}

fn prefix_salt(p: Prefix) -> u64 {
    ((p.network_u32() as u64) << 8) | p.len() as u64
}

/// An origin guaranteed different from the real one (top-half ASN
/// space, far from anything the ecosystem allocates).
fn wrong_origin(origin: Asn) -> Asn {
    Asn(origin.value() ^ 0x4000_0000)
}

fn source_of(asn: Asn) -> Source {
    match asn.value() % 10 {
        0..=6 => Source::Ripe,
        7..=8 => Source::Radb,
        _ => Source::Arin,
    }
}

/// 16-hex FxHash over a block's body — the `sig:` line's value.
fn block_sig(body: &str) -> String {
    let mut h = FxHasher::default();
    h.write(body.as_bytes());
    format!("{:016x}", h.finish())
}

fn push_block(out: &mut String, body: &str) {
    let body = body.trim_end_matches('\n');
    out.push_str(body);
    out.push('\n');
    out.push_str(&format!("sig:            {}\n\n", block_sig(body)));
}

/// One IXP's registration header inside the corpus: which route-server
/// ASN anchors `aut-num` registration checks and which as-set (if the
/// IXP publishes one) names the RS membership.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IxpMeta {
    /// IXP display name.
    pub name: String,
    /// The route-server ASN members register policy toward.
    pub rs_asn: Asn,
    /// The RS membership as-set, when the IXP publishes one.
    pub rs_set: Option<String>,
}

/// Render the full IRR/RPKI corpus for `eco` under `cfg`'s noise.
///
/// Layout: per-IXP headers (with as-sets where published), one
/// `aut-num` per RS member (RS policy lines plus optional per-peer
/// filters), `route` objects and ROAs for every (prefix, announcer)
/// pair over the IXP fabric, then the `end:` trailer. Deterministic
/// byte-for-byte in `(eco, cfg)`.
pub fn derive_corpus(eco: &Ecosystem, cfg: &CorpusConfig) -> String {
    let mut out = String::new();
    let mut objects: u64 = 0;
    let mut roas: u64 = 0;

    let stale = |ixp: IxpId, asn: Asn| {
        chance(
            cfg.seed,
            TAG_STALE,
            ixp.0 as u64,
            asn.value() as u64,
            cfg.stale_registration,
        )
    };

    // ---- IXP headers + published as-sets. ----
    for ixp in &eco.ixps {
        let set_name = ixp
            .publishes_member_list
            .then(|| format!("AS-{}-RS", ixp.name.to_uppercase().replace(['-', '.'], "")));
        let mut body = format!(
            "ixp:            {}\nixp-name:       {}\nrs-asn:         AS{}\n",
            ixp.id.0,
            ixp.name,
            ixp.route_server.asn.value()
        );
        if let Some(name) = &set_name {
            body.push_str(&format!("rs-set:         {name}\n"));
        }
        push_block(&mut out, &body);
        objects += 1;

        if let Some(name) = set_name {
            let members: Vec<Asn> = ixp
                .rs_member_asns()
                .into_iter()
                .filter(|&a| !stale(ixp.id, a))
                .collect();
            let set = RpslObject::AsSet {
                name,
                members,
                sets: Vec::new(),
                source: Source::Ripe,
            };
            push_block(&mut out, &set.to_rpsl());
            objects += 1;
        }
    }

    // ---- One aut-num per RS member, merged across its IXPs. ----
    let mut policies: BTreeMap<Asn, (Vec<PolicyLine>, Vec<PolicyLine>)> = BTreeMap::new();
    for ixp in &eco.ixps {
        for asn in ixp.rs_member_asns() {
            let (imports, exports) = policies.entry(asn).or_default();
            if !stale(ixp.id, asn) {
                let rs = ixp.route_server.asn;
                imports.push(PolicyLine {
                    peer: rs,
                    allow: true,
                });
                exports.push(PolicyLine {
                    peer: rs,
                    allow: true,
                });
            }
            let filters = chance(
                cfg.seed,
                TAG_FILTER,
                ixp.id.0 as u64,
                asn.value() as u64,
                cfg.filter_frac,
            );
            if !filters {
                continue;
            }
            let member = ixp.member(asn).expect("rs member exists");
            for peer in ixp.rs_member_asns() {
                if peer == asn {
                    continue;
                }
                let flip_e = chance(
                    cfg.seed,
                    TAG_FLIP_EXPORT,
                    ((ixp.id.0 as u64) << 32) | asn.value() as u64,
                    peer.value() as u64,
                    cfg.policy_flip,
                );
                let flip_i = chance(
                    cfg.seed,
                    TAG_FLIP_IMPORT,
                    ((ixp.id.0 as u64) << 32) | asn.value() as u64,
                    peer.value() as u64,
                    cfg.policy_flip,
                );
                exports.push(PolicyLine {
                    peer,
                    allow: member.export.allows(peer) != flip_e,
                });
                imports.push(PolicyLine {
                    peer,
                    allow: member.import.accepts(peer) != flip_i,
                });
            }
        }
    }
    for (asn, (imports, exports)) in policies {
        let dedup = |lines: Vec<PolicyLine>| {
            let mut seen = BTreeSet::new();
            lines
                .into_iter()
                .filter(|l| seen.insert((l.peer, l.allow)))
                .collect::<Vec<_>>()
        };
        let aut = RpslObject::AutNum {
            asn,
            as_name: format!("MLP-AS{}", asn.value()),
            imports: dedup(imports),
            exports: dedup(exports),
            source: source_of(asn),
        };
        push_block(&mut out, &aut.to_rpsl());
        objects += 1;
    }

    // ---- Route objects + ROAs over the announced (prefix, origin)
    // universe: everything members push over the fabric, own prefixes
    // and proxy-registered customer-cone routes alike. ----
    let mut pairs: BTreeSet<(Prefix, Asn)> = BTreeSet::new();
    for ixp in &eco.ixps {
        for asn in ixp.rs_member_asns() {
            let member = ixp.member(asn).expect("rs member exists");
            for ann in &member.announcements {
                pairs.insert((ann.prefix, asn));
            }
        }
    }
    for &(prefix, origin) in &pairs {
        let (ps, os) = (prefix_salt(prefix), origin.value() as u64);
        if chance(cfg.seed, TAG_ROUTE_MISS, ps, os, cfg.route_missing) {
            continue;
        }
        let registered = if chance(cfg.seed, TAG_ROUTE_WRONG, ps, os, cfg.route_contradict) {
            wrong_origin(origin)
        } else {
            origin
        };
        let route = RpslObject::Route {
            prefix,
            origin: registered,
            source: source_of(origin),
        };
        push_block(&mut out, &route.to_rpsl());
        objects += 1;
    }
    for &(prefix, origin) in &pairs {
        let (ps, os) = (prefix_salt(prefix), origin.value() as u64);
        if chance(cfg.seed, TAG_ROA_MISS, ps, os, cfg.roa_missing) {
            continue;
        }
        let authorized = if chance(cfg.seed, TAG_ROA_WRONG, ps, os, cfg.roa_contradict) {
            wrong_origin(origin)
        } else {
            origin
        };
        // Operators issue maxLength slack to keep their own
        // de-aggregation Valid — without it, every more-specific whose
        // own ROA fell to `roa_missing` would read as an RFC 6811
        // Invalid under the covering aggregate and the contradicted
        // rate would swamp the report.
        let roa = Roa {
            prefix,
            max_length: prefix.len().saturating_add(8).min(32),
            origin: authorized,
            expired: chance(cfg.seed, TAG_ROA_EXPIRE, ps, os, cfg.roa_expired),
        };
        push_block(&mut out, &roa.to_text());
        roas += 1;
    }

    push_block(
        &mut out,
        &format!("end:            objects={objects} roas={roas}\n"),
    );
    out
}

/// Health of a parsed corpus, carried into every report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CorpusStats {
    /// Registry objects parsed (IXP headers + RPSL objects).
    pub objects: u64,
    /// ROAs parsed.
    pub roas: u64,
    /// Blocks refused: signature mismatch, unparseable body, or a
    /// truncated tail.
    pub quarantined: u64,
    /// Trailer seen, counts reconciled, nothing quarantined after it.
    /// Confirmations require a complete corpus.
    pub complete: bool,
}

impl CorpusStats {
    /// Can this corpus confirm a link? Anything quarantined — or an
    /// unterminated stream — means evidence may be missing, so
    /// confirmation is off the table (contradiction is not: surviving
    /// blocks still speak).
    pub fn degraded(&self) -> bool {
        self.quarantined > 0 || !self.complete
    }
}

/// The outcome of [`parse_corpus`]: indexed registries plus health.
#[derive(Debug, Clone, Default)]
pub struct ParsedCorpus {
    /// Per-IXP registration headers.
    pub ixps: BTreeMap<IxpId, IxpMeta>,
    /// The RPSL side (aut-nums, as-sets, route objects).
    pub irr: IrrDatabase,
    /// The RPKI side.
    pub roas: RoaTable,
    /// Parse health.
    pub stats: CorpusStats,
}

fn parse_ixp_meta(body: &str) -> Option<(IxpId, IxpMeta)> {
    let mut id = None;
    let mut name = None;
    let mut rs_asn = None;
    let mut rs_set = None;
    for line in body.lines() {
        let (key, value) = line.split_once(':')?;
        let value = value.trim();
        match key.trim() {
            "ixp" => id = Some(IxpId(value.parse().ok()?)),
            "ixp-name" => name = Some(value.to_string()),
            "rs-asn" => rs_asn = Some(value.parse::<Asn>().ok()?),
            "rs-set" => rs_set = Some(value.to_string()),
            _ => return None,
        }
    }
    Some((
        id?,
        IxpMeta {
            name: name?,
            rs_asn: rs_asn?,
            rs_set,
        },
    ))
}

fn parse_end_counts(body: &str) -> Option<(u64, u64)> {
    let (key, value) = body.trim().split_once(':')?;
    if key.trim() != "end" {
        return None;
    }
    let mut objects = None;
    let mut roas = None;
    for tok in value.split_whitespace() {
        match tok.split_once('=')? {
            ("objects", n) => objects = Some(n.parse().ok()?),
            ("roas", n) => roas = Some(n.parse().ok()?),
            _ => return None,
        }
    }
    Some((objects?, roas?))
}

/// Parse a corpus produced by [`derive_corpus`] (or any damaged copy of
/// one). Never panics: blocks whose `sig:` fails to verify — or whose
/// body does not parse — are quarantined, a missing or irreconcilable
/// `end:` trailer leaves the corpus incomplete, and scoring degrades
/// accordingly.
pub fn parse_corpus(text: &str) -> ParsedCorpus {
    let mut out = ParsedCorpus::default();
    let mut roas: Vec<Roa> = Vec::new();
    let mut block: Vec<&str> = Vec::new();
    let mut end_counts: Option<(u64, u64)> = None;
    let mut after_end = false;

    let mut dispatch = |body: String, out: &mut ParsedCorpus, roas: &mut Vec<Roa>| {
        if after_end {
            // Content after the trailer: the stream is not the one the
            // trailer described.
            out.stats.quarantined += 1;
            return;
        }
        let first_key = body
            .lines()
            .next()
            .and_then(|l| l.split_once(':'))
            .map(|(k, _)| k.trim().to_string())
            .unwrap_or_default();
        match first_key.as_str() {
            "ixp" => match parse_ixp_meta(&body) {
                Some((id, meta)) => {
                    out.ixps.insert(id, meta);
                    out.stats.objects += 1;
                }
                None => out.stats.quarantined += 1,
            },
            "roa" => match Roa::parse(&body) {
                Some(roa) => {
                    roas.push(roa);
                    out.stats.roas += 1;
                }
                None => out.stats.quarantined += 1,
            },
            "end" => match parse_end_counts(&body) {
                Some(counts) => {
                    end_counts = Some(counts);
                    after_end = true;
                }
                None => out.stats.quarantined += 1,
            },
            _ => match RpslObject::parse(&body) {
                Some(obj) => {
                    out.irr.objects.push(obj);
                    out.stats.objects += 1;
                }
                None => out.stats.quarantined += 1,
            },
        }
    };

    for line in text.lines() {
        let is_sig = line.split_once(':').is_some_and(|(k, _)| k.trim() == "sig");
        if is_sig {
            let body = block.join("\n");
            let claimed = line.split_once(':').expect("checked above").1.trim();
            if !block.is_empty() && claimed == block_sig(&body) {
                dispatch(body, &mut out, &mut roas);
            } else {
                out.stats.quarantined += 1;
            }
            block.clear();
        } else if line.trim().is_empty() {
            if !block.is_empty() {
                // A block interrupted by a blank line never reaches its
                // sig intact; count it once, here.
                out.stats.quarantined += 1;
                block.clear();
            }
        } else {
            block.push(line);
        }
    }
    if !block.is_empty() {
        // Truncated tail: lines with no sig to verify them.
        out.stats.quarantined += 1;
    }

    out.roas = RoaTable::new(roas);
    out.stats.complete =
        out.stats.quarantined == 0 && end_counts == Some((out.stats.objects, out.stats.roas));
    out
}

/// The three-way score of one inferred link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verdict {
    /// Registry evidence affirms the link.
    Confirmed,
    /// Registry is silent, partial, or too damaged to say.
    Unknown,
    /// Registry evidence speaks against the link.
    Contradicted,
}

impl Verdict {
    /// Lower-case wire name (`confirmed` / `unknown` / `contradicted`).
    pub fn code(self) -> &'static str {
        match self {
            Verdict::Confirmed => "confirmed",
            Verdict::Unknown => "unknown",
            Verdict::Contradicted => "contradicted",
        }
    }
}

/// Why a link scored the way it did. Declared in ladder order: the
/// first reason that applies wins, contradictions before gates before
/// confirmations before fallbacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Reason {
    /// An endpoint's aut-num denies the other (export or import),
    /// with no allow line overriding it.
    PolicyDenied,
    /// RFC 6811 Invalid in the majority: more of an endpoint's
    /// announced prefixes are covered-but-unauthorized than Valid.
    RoaOriginMismatch,
    /// Route-object mismatch in the majority: more of an endpoint's
    /// announced prefixes have route objects naming only other origins
    /// than ones naming the announcer.
    RouteOriginMismatch,
    /// The corpus is damaged or unterminated — nothing can be
    /// confirmed against evidence that may be missing.
    CorpusDegraded,
    /// An endpoint is registered at the IXP neither via the RS as-set
    /// nor via an aut-num export toward the RS ASN.
    Unregistered,
    /// Both endpoints' aut-nums carry explicit allow filters toward
    /// each other.
    MutualFilters,
    /// Both endpoints announce ROA-valid prefixes (and nothing
    /// invalid).
    RoaValidBoth,
    /// Both endpoints' announced prefixes match registered route
    /// objects (and nothing mismatches).
    RouteMatchBoth,
    /// Origin evidence covers one endpoint but not both.
    PartialCoverage,
    /// No origin or policy evidence on either endpoint.
    NoCoverage,
}

impl Reason {
    /// Every reason, in ladder order.
    pub const ALL: [Reason; 10] = [
        Reason::PolicyDenied,
        Reason::RoaOriginMismatch,
        Reason::RouteOriginMismatch,
        Reason::CorpusDegraded,
        Reason::Unregistered,
        Reason::MutualFilters,
        Reason::RoaValidBoth,
        Reason::RouteMatchBoth,
        Reason::PartialCoverage,
        Reason::NoCoverage,
    ];

    /// The verdict this reason implies.
    pub fn verdict(self) -> Verdict {
        match self {
            Reason::PolicyDenied | Reason::RoaOriginMismatch | Reason::RouteOriginMismatch => {
                Verdict::Contradicted
            }
            Reason::MutualFilters | Reason::RoaValidBoth | Reason::RouteMatchBoth => {
                Verdict::Confirmed
            }
            _ => Verdict::Unknown,
        }
    }

    /// Stable kebab-case wire code.
    pub fn code(self) -> &'static str {
        match self {
            Reason::PolicyDenied => "policy-denied",
            Reason::RoaOriginMismatch => "roa-origin-mismatch",
            Reason::RouteOriginMismatch => "route-origin-mismatch",
            Reason::CorpusDegraded => "corpus-degraded",
            Reason::Unregistered => "unregistered",
            Reason::MutualFilters => "mutual-filters",
            Reason::RoaValidBoth => "roa-valid-both",
            Reason::RouteMatchBoth => "route-match-both",
            Reason::PartialCoverage => "partial-coverage",
            Reason::NoCoverage => "no-coverage",
        }
    }

    /// Stable on-disk tag (see `mlpeer_store`'s codec).
    pub fn tag(self) -> u8 {
        match self {
            Reason::PolicyDenied => 0,
            Reason::RoaOriginMismatch => 1,
            Reason::RouteOriginMismatch => 2,
            Reason::CorpusDegraded => 3,
            Reason::Unregistered => 4,
            Reason::MutualFilters => 5,
            Reason::RoaValidBoth => 6,
            Reason::RouteMatchBoth => 7,
            Reason::PartialCoverage => 8,
            Reason::NoCoverage => 9,
        }
    }

    /// Inverse of [`tag`](Reason::tag); `None` on unknown tags.
    pub fn from_tag(tag: u8) -> Option<Reason> {
        Reason::ALL.into_iter().find(|r| r.tag() == tag)
    }
}

/// One scored link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkVerdict {
    /// The IXP the link was inferred at.
    pub ixp: IxpId,
    /// Lower endpoint.
    pub a: Asn,
    /// Higher endpoint.
    pub b: Asn,
    /// Why it scored the way it did ([`Reason::verdict`] gives the
    /// three-way score).
    pub reason: Reason,
}

/// confirmed / unknown / contradicted tallies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerdictCounts {
    /// Links the registry affirms.
    pub confirmed: u64,
    /// Links the registry cannot speak to.
    pub unknown: u64,
    /// Links the registry speaks against.
    pub contradicted: u64,
}

impl VerdictCounts {
    fn bump(&mut self, verdict: Verdict) {
        match verdict {
            Verdict::Confirmed => self.confirmed += 1,
            Verdict::Unknown => self.unknown += 1,
            Verdict::Contradicted => self.contradicted += 1,
        }
    }

    /// Links scored in total.
    pub fn total(&self) -> u64 {
        self.confirmed + self.unknown + self.contradicted
    }
}

/// The cross-validation result served at `/v1/validate`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ValidationReport {
    /// Parse health of the corpus the scores came from.
    pub corpus: CorpusStats,
    /// Whole-fabric tallies.
    pub totals: VerdictCounts,
    /// Per-IXP tallies.
    pub per_ixp: BTreeMap<IxpId, VerdictCounts>,
    /// How often each reason fired.
    pub reasons: BTreeMap<Reason, u64>,
}

/// Per-(IXP, member) origin-validation coverage, folded once over the
/// announcement set so scoring is O(links) afterwards.
#[derive(Debug, Clone, Copy, Default)]
struct Coverage {
    roa_valid: u32,
    roa_invalid: u32,
    route_match: u32,
    route_mismatch: u32,
}

/// Score every inferred link against a parsed corpus. Returns the
/// aggregate report and the per-link verdicts (ordered by `(ixp, a,
/// b)`, exactly the iteration order of `links.per_ixp`).
pub fn score_links(
    corpus: &ParsedCorpus,
    links: &MlpLinkSet,
    announcements: &BTreeSet<Announcement>,
) -> (ValidationReport, Vec<LinkVerdict>) {
    // ---- Fold the aut-num policy lines into (from, to) sets. ----
    let mut export_allow: FxHashSet<(Asn, Asn)> = FxHashSet::default();
    let mut export_deny: FxHashSet<(Asn, Asn)> = FxHashSet::default();
    let mut import_allow: FxHashSet<(Asn, Asn)> = FxHashSet::default();
    let mut import_deny: FxHashSet<(Asn, Asn)> = FxHashSet::default();
    let mut route_origins: FxHashMap<Prefix, BTreeSet<Asn>> = FxHashMap::default();
    for obj in &corpus.irr.objects {
        match obj {
            RpslObject::AutNum {
                asn,
                imports,
                exports,
                ..
            } => {
                for l in exports {
                    let set = if l.allow {
                        &mut export_allow
                    } else {
                        &mut export_deny
                    };
                    set.insert((*asn, l.peer));
                }
                for l in imports {
                    let set = if l.allow {
                        &mut import_allow
                    } else {
                        &mut import_deny
                    };
                    set.insert((*asn, l.peer));
                }
            }
            RpslObject::Route { prefix, origin, .. } => {
                route_origins.entry(*prefix).or_default().insert(*origin);
            }
            RpslObject::AsSet { .. } => {}
        }
    }
    // An allow line anywhere overrides a deny toward the same peer
    // (registries accumulate; openness wins over a stale deny).
    let denied = |from: Asn, to: Asn| {
        (export_deny.contains(&(from, to)) && !export_allow.contains(&(from, to)))
            || (import_deny.contains(&(to, from)) && !import_allow.contains(&(to, from)))
    };

    // ---- Registration rosters per IXP. ----
    let mut registered: BTreeMap<IxpId, BTreeSet<Asn>> = BTreeMap::new();
    for (&id, meta) in &corpus.ixps {
        let mut roster: BTreeSet<Asn> = meta
            .rs_set
            .as_deref()
            .map(|name| corpus.irr.resolve_as_set(name).into_iter().collect())
            .unwrap_or_default();
        for &(from, to) in &export_allow {
            if to == meta.rs_asn {
                roster.insert(from);
            }
        }
        registered.insert(id, roster);
    }

    // ---- Origin coverage per (IXP, member), one announcement scan. ----
    let mut coverage: FxHashMap<(IxpId, Asn), Coverage> = FxHashMap::default();
    for &(prefix, ixp, member) in announcements {
        let cov = coverage.entry((ixp, member)).or_default();
        match corpus.roas.validate(prefix, member) {
            RoaOutcome::Valid => cov.roa_valid += 1,
            RoaOutcome::Invalid => cov.roa_invalid += 1,
            RoaOutcome::NotFound => {}
        }
        if let Some(origins) = route_origins.get(&prefix) {
            if origins.contains(&member) {
                cov.route_match += 1;
            } else {
                cov.route_mismatch += 1;
            }
        }
    }

    // ---- The ladder, per link. ----
    let degraded = corpus.stats.degraded();
    let empty = BTreeSet::new();
    let mut report = ValidationReport {
        corpus: corpus.stats.clone(),
        ..ValidationReport::default()
    };
    let mut verdicts = Vec::new();
    for (&ixp, pairs) in &links.per_ixp {
        let roster = registered.get(&ixp).unwrap_or(&empty);
        for &(a, b) in pairs {
            let cov_a = coverage.get(&(ixp, a)).copied().unwrap_or_default();
            let cov_b = coverage.get(&(ixp, b)).copied().unwrap_or_default();
            // Majority rules, not single-route vetoes: real tables
            // carry stray RFC 6811 Invalids (a specific's ROA lapsed
            // under someone's covering aggregate) and stray route-object
            // mismatches, and relying parties don't de-peer over one.
            // The registry contradicts an endpoint only when its bad
            // evidence outweighs its good.
            let roa_bad = |c: Coverage| c.roa_invalid > c.roa_valid;
            let route_bad = |c: Coverage| c.route_mismatch > c.route_match;
            let reason = if denied(a, b) || denied(b, a) {
                Reason::PolicyDenied
            } else if roa_bad(cov_a) || roa_bad(cov_b) {
                Reason::RoaOriginMismatch
            } else if route_bad(cov_a) || route_bad(cov_b) {
                Reason::RouteOriginMismatch
            } else if degraded {
                Reason::CorpusDegraded
            } else if !roster.contains(&a) || !roster.contains(&b) {
                Reason::Unregistered
            } else if export_allow.contains(&(a, b)) && export_allow.contains(&(b, a)) {
                Reason::MutualFilters
            } else if cov_a.roa_valid > 0 && cov_b.roa_valid > 0 {
                Reason::RoaValidBoth
            } else if cov_a.route_match > 0 && cov_b.route_match > 0 {
                Reason::RouteMatchBoth
            } else if cov_a.roa_valid > 0
                || cov_b.roa_valid > 0
                || cov_a.route_match > 0
                || cov_b.route_match > 0
            {
                Reason::PartialCoverage
            } else {
                Reason::NoCoverage
            };
            let verdict = reason.verdict();
            report.totals.bump(verdict);
            report.per_ixp.entry(ixp).or_default().bump(verdict);
            *report.reasons.entry(reason).or_default() += 1;
            verdicts.push(LinkVerdict { ixp, a, b, reason });
        }
    }
    (report, verdicts)
}

/// The whole stage in one call: derive the corpus from `eco`, parse it
/// back, and score `links` against it using the announcement set the
/// observations support. A pure function of its arguments — serial,
/// sharded and distributed harvests that agree on `(links,
/// observations)` get byte-identical reports.
pub fn validate_harvest(
    eco: &Ecosystem,
    links: &MlpLinkSet,
    observations: &[Observation],
    cfg: &CorpusConfig,
) -> ValidationReport {
    let text = derive_corpus(eco, cfg);
    let corpus = parse_corpus(&text);
    let announcements = crate::index::scan::announcements(links, observations);
    score_links(&corpus, links, &announcements).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::ObservationSink;
    use mlpeer_ixp::EcosystemConfig;

    fn small_eco() -> Ecosystem {
        Ecosystem::generate(EcosystemConfig::tiny(7))
    }

    fn harvest(eco: &Ecosystem) -> (MlpLinkSet, Vec<Observation>) {
        let (conn, observations) = crate::live::full_harvest(eco);
        let mut inferencer = crate::infer::LinkInferencer::default();
        for o in &observations {
            inferencer.push(o.clone());
        }
        (inferencer.finalize(&conn), observations)
    }

    #[test]
    fn corpus_derivation_is_deterministic() {
        let eco = small_eco();
        let cfg = CorpusConfig::seeded(5);
        assert_eq!(derive_corpus(&eco, &cfg), derive_corpus(&eco, &cfg));
        assert_ne!(
            derive_corpus(&eco, &cfg),
            derive_corpus(&eco, &CorpusConfig::seeded(6)),
            "the seed must actually steer the noise"
        );
    }

    #[test]
    fn pristine_corpus_parses_complete() {
        let eco = small_eco();
        let text = derive_corpus(&eco, &CorpusConfig::seeded(5));
        let corpus = parse_corpus(&text);
        assert_eq!(corpus.stats.quarantined, 0, "nothing to quarantine");
        assert!(corpus.stats.complete, "trailer must reconcile");
        assert!(!corpus.stats.degraded());
        assert!(corpus.stats.objects > 0);
        assert!(corpus.stats.roas > 0);
        assert_eq!(corpus.ixps.len(), eco.ixps.len());
        assert_eq!(corpus.roas.len() as u64, corpus.stats.roas);
    }

    #[test]
    fn corrupted_block_is_quarantined_not_believed() {
        let eco = small_eco();
        let text = derive_corpus(&eco, &CorpusConfig::seeded(5));
        // Flip one byte inside the first aut-num's policy line.
        let damaged = text.replacen("accept ANY", "accept NAY", 1);
        assert_ne!(damaged, text, "corpus must contain an RS import line");
        let corpus = parse_corpus(&damaged);
        assert_eq!(corpus.stats.quarantined, 1);
        assert!(!corpus.stats.complete, "counts no longer reconcile");
        assert!(corpus.stats.degraded());
    }

    #[test]
    fn truncated_corpus_is_incomplete() {
        let eco = small_eco();
        let text = derive_corpus(&eco, &CorpusConfig::seeded(5));
        let cut = parse_corpus(&text[..text.len() / 2]);
        assert!(cut.stats.degraded(), "half a corpus cannot be complete");
    }

    #[test]
    fn end_to_end_scores_every_link_deterministically() {
        let eco = small_eco();
        let (links, observations) = harvest(&eco);
        let cfg = CorpusConfig::seeded(5);
        let report = validate_harvest(&eco, &links, &observations, &cfg);
        let links_total: u64 = links.per_ixp.values().map(|s| s.len() as u64).sum();
        assert_eq!(report.totals.total(), links_total, "every link scored");
        assert_eq!(
            report
                .per_ixp
                .values()
                .map(VerdictCounts::total)
                .sum::<u64>(),
            links_total,
            "per-IXP tallies partition the totals"
        );
        assert_eq!(
            report.reasons.values().sum::<u64>(),
            links_total,
            "reason tallies partition the totals"
        );
        assert!(!report.corpus.degraded());
        assert_eq!(
            report,
            validate_harvest(&eco, &links, &observations, &cfg),
            "byte-identical on re-run"
        );
    }

    #[test]
    fn degraded_corpus_never_confirms() {
        let eco = small_eco();
        let (links, observations) = harvest(&eco);
        let text = derive_corpus(&eco, &CorpusConfig::seeded(5));
        let announcements = crate::index::scan::announcements(&links, &observations);
        // Quarantine the as-set blocks: confirmation evidence gone.
        let damaged = text.replace("as-set:", "as-sot:");
        let corpus = parse_corpus(&damaged);
        assert!(corpus.stats.degraded());
        let (report, _) = score_links(&corpus, &links, &announcements);
        assert_eq!(report.totals.confirmed, 0, "degraded ⇒ nothing confirmed");
    }

    #[test]
    fn reason_tags_round_trip() {
        for reason in Reason::ALL {
            assert_eq!(Reason::from_tag(reason.tag()), Some(reason));
        }
        assert_eq!(Reason::from_tag(200), None);
    }
}
