//! Streaming observation delivery.
//!
//! The passive and active pipelines used to materialize every
//! [`Observation`] in one `Vec` before any inference ran — fine at toy
//! scale, hostile to the paper's actual workload (every archived route
//! across many collectors and IXPs). They now *push* observations into
//! an [`ObservationSink`] as they are produced, so a consumer can fold
//! them away immediately ([`crate::infer::LinkInferencer`]), collect
//! them (`Vec<Observation>`), count them ([`CountingSink`]), or fan one
//! stream out to several consumers (tuple sinks).
//!
//! [`MergeSink`] is the sharding counterpart: each shard of a
//! parallel harvest folds into its own sink, and shard states combine
//! with an associative `merge` (see
//! [`crate::passive::harvest_passive_sharded`]).

use crate::infer::Observation;

/// A consumer of the observation stream.
pub trait ObservationSink {
    /// Accept one observation.
    fn push(&mut self, obs: Observation);
}

/// Collect observations in arrival order.
impl ObservationSink for Vec<Observation> {
    fn push(&mut self, obs: Observation) {
        Vec::push(self, obs);
    }
}

/// Count observations without keeping them (stats-only runs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingSink(pub usize);

impl ObservationSink for CountingSink {
    fn push(&mut self, _obs: Observation) {
        self.0 += 1;
    }
}

/// Fan one stream out to two consumers.
impl<A: ObservationSink, B: ObservationSink> ObservationSink for (A, B) {
    fn push(&mut self, obs: Observation) {
        self.0.push(obs.clone());
        self.1.push(obs);
    }
}

/// Per-shard sink state that combines associatively, so a sharded
/// harvest reduces to the same state as a serial one.
pub trait MergeSink: Sized {
    /// Fold another shard's state into this one. Implementations must
    /// be associative; shards arrive in input (collector) order.
    fn merge(&mut self, other: Self);
}

impl MergeSink for Vec<Observation> {
    fn merge(&mut self, mut other: Self) {
        self.append(&mut other);
    }
}

impl MergeSink for CountingSink {
    fn merge(&mut self, other: Self) {
        self.0 += other.0;
    }
}

impl<A: MergeSink, B: MergeSink> MergeSink for (A, B) {
    fn merge(&mut self, other: Self) {
        self.0.merge(other.0);
        self.1.merge(other.1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::ObservationSource;
    use mlpeer_bgp::Asn;
    use mlpeer_ixp::ixp::IxpId;

    fn obs(member: u32) -> Observation {
        Observation {
            ixp: IxpId(0),
            member: Asn(member),
            prefix: "10.0.0.0/24".parse().unwrap(),
            actions: vec![],
            source: ObservationSource::Passive,
        }
    }

    #[test]
    fn vec_sink_collects_in_order() {
        let mut sink: Vec<Observation> = Vec::new();
        // Through the trait, not Vec's inherent push.
        ObservationSink::push(&mut sink, obs(1));
        ObservationSink::push(&mut sink, obs(2));
        assert_eq!(sink.len(), 2);
        assert_eq!(sink[0].member, Asn(1));
    }

    #[test]
    fn tuple_sink_fans_out() {
        let mut sink: (Vec<Observation>, CountingSink) = Default::default();
        sink.push(obs(1));
        sink.push(obs(2));
        assert_eq!(sink.0.len(), 2);
        assert_eq!(sink.1, CountingSink(2));
    }

    #[test]
    fn merge_concatenates_in_shard_order() {
        let mut a: (Vec<Observation>, CountingSink) = Default::default();
        a.push(obs(1));
        let mut b: (Vec<Observation>, CountingSink) = Default::default();
        b.push(obs(2));
        b.push(obs(3));
        a.merge(b);
        let members: Vec<u32> = a.0.iter().map(|o| o.member.value()).collect();
        assert_eq!(members, vec![1, 2, 3]);
        assert_eq!(a.1, CountingSink(3));
    }
}
