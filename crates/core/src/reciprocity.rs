//! The reciprocity-assumption study (§4.4).
//!
//! The inference assumes: *if member `i` does not block member `j` in
//! its export filter, `i` also does not block `j` in its import
//! filter.* The paper validated this against the IRR-generated filters
//! of 230 AMS-IX members, finding zero violations, and found about half
//! of the import filters *more permissive* than the exports — so the
//! assumption is conservative: no false-positive links, only missed
//! asymmetric ones.

use std::collections::{BTreeMap, BTreeSet};

use mlpeer_bgp::Asn;
use mlpeer_data::irr::{IrrDatabase, RpslObject, Source};

/// Outcome of the study.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReciprocityReport {
    /// Members whose IRR records carry per-peer filters.
    pub members_with_filters: usize,
    /// Members whose import filter blocks someone the export allows —
    /// violations of the assumption (the paper found none).
    pub violations: Vec<Asn>,
    /// Members whose import blocks strictly fewer peers than their
    /// export (more permissive imports; ~half in the paper).
    pub import_more_permissive: usize,
    /// Members with exactly matching filters.
    pub import_equal: usize,
}

impl ReciprocityReport {
    /// Does the dataset confirm the assumption (zero violations)?
    pub fn assumption_holds(&self) -> bool {
        self.violations.is_empty()
    }

    /// Fraction of members with more permissive imports.
    pub fn more_permissive_frac(&self) -> f64 {
        if self.members_with_filters == 0 {
            return 0.0;
        }
        self.import_more_permissive as f64 / self.members_with_filters as f64
    }
}

/// Compare import vs export filters for every member with per-peer IRR
/// policy lines toward the given RS member set.
pub fn study_reciprocity(
    registries: &BTreeMap<Source, IrrDatabase>,
    rs_members: &BTreeSet<Asn>,
) -> ReciprocityReport {
    let mut report = ReciprocityReport::default();
    for db in registries.values() {
        for obj in &db.objects {
            let RpslObject::AutNum {
                asn,
                imports,
                exports,
                ..
            } = obj
            else {
                continue;
            };
            if !rs_members.contains(asn) {
                continue;
            }
            // Per-peer lines toward other RS members only.
            let export_denied: BTreeSet<Asn> = exports
                .iter()
                .filter(|l| !l.allow && rs_members.contains(&l.peer))
                .map(|l| l.peer)
                .collect();
            let export_peer_lines = exports
                .iter()
                .filter(|l| rs_members.contains(&l.peer) && l.peer != *asn)
                .count();
            if export_peer_lines <= 1 {
                continue; // no per-peer filtering registered (just the RS line)
            }
            let import_denied: BTreeSet<Asn> = imports
                .iter()
                .filter(|l| !l.allow && rs_members.contains(&l.peer))
                .map(|l| l.peer)
                .collect();
            report.members_with_filters += 1;
            if !import_denied.is_subset(&export_denied) {
                report.violations.push(*asn);
            } else if import_denied.len() < export_denied.len() {
                report.import_more_permissive += 1;
            } else {
                report.import_equal += 1;
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpeer_data::irr::{build_irr, IrrConfig, PolicyLine};
    use mlpeer_ixp::{Ecosystem, EcosystemConfig};

    #[test]
    fn generated_amsix_filters_confirm_assumption() {
        let eco = Ecosystem::generate(EcosystemConfig::tiny(91));
        let irr = build_irr(&eco, &IrrConfig::default());
        let amsix = eco.ixp_by_name("AMS-IX").unwrap();
        let members: BTreeSet<Asn> = amsix.rs_member_asns().into_iter().collect();
        let report = study_reciprocity(&irr, &members);
        assert!(
            report.members_with_filters > 0,
            "some members registered filters"
        );
        assert!(
            report.assumption_holds(),
            "violations: {:?}",
            report.violations
        );
        assert_eq!(
            report.members_with_filters,
            report.import_more_permissive + report.import_equal
        );
    }

    #[test]
    fn violation_detected_when_injected() {
        let mut registries: BTreeMap<Source, IrrDatabase> = BTreeMap::new();
        let mut db = IrrDatabase::default();
        // Member 10: export allows 20, import blocks 20 → violation.
        db.objects.push(RpslObject::AutNum {
            asn: Asn(10),
            as_name: "BAD".into(),
            imports: vec![PolicyLine {
                peer: Asn(20),
                allow: false,
            }],
            exports: vec![
                PolicyLine {
                    peer: Asn(20),
                    allow: true,
                },
                PolicyLine {
                    peer: Asn(30),
                    allow: true,
                },
            ],
            source: Source::Ripe,
        });
        registries.insert(Source::Ripe, db);
        let members: BTreeSet<Asn> = [Asn(10), Asn(20), Asn(30)].into_iter().collect();
        let report = study_reciprocity(&registries, &members);
        assert_eq!(report.violations, vec![Asn(10)]);
        assert!(!report.assumption_holds());
    }

    #[test]
    fn more_permissive_import_counted() {
        let mut registries: BTreeMap<Source, IrrDatabase> = BTreeMap::new();
        let mut db = IrrDatabase::default();
        // Export blocks 20 and 30; import blocks only 20: more
        // permissive, no violation.
        db.objects.push(RpslObject::AutNum {
            asn: Asn(10),
            as_name: "OK".into(),
            imports: vec![PolicyLine {
                peer: Asn(20),
                allow: false,
            }],
            exports: vec![
                PolicyLine {
                    peer: Asn(20),
                    allow: false,
                },
                PolicyLine {
                    peer: Asn(30),
                    allow: false,
                },
            ],
            source: Source::Ripe,
        });
        registries.insert(Source::Ripe, db);
        let members: BTreeSet<Asn> = [Asn(10), Asn(20), Asn(30)].into_iter().collect();
        let report = study_reciprocity(&registries, &members);
        assert!(report.assumption_holds());
        assert_eq!(report.import_more_permissive, 1);
        assert_eq!(report.more_permissive_frac(), 1.0);
    }
}
