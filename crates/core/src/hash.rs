//! Deterministic hashed containers for the inference hot paths.
//!
//! The pipeline's inner loops key maps by `(IxpId, Asn)`, `Prefix` and
//! `(Asn, Asn)` — small `Copy` keys hit millions of times at Table-2
//! scale, where `BTreeMap`'s pointer-chasing comparisons dominate.
//! These aliases use an FxHash-style multiplicative hasher: much
//! cheaper than SipHash for short keys, and — unlike
//! `std::collections::HashMap`'s `RandomState` — *unseeded*, so two
//! runs of the same binary iterate identically and the end-to-end
//! determinism tests stay meaningful. Sorted order is recovered only at
//! report boundaries ([`crate::infer::LinkInferencer::finalize`]).
//!
//! The hasher is not DoS-resistant; every key here comes from our own
//! simulation, not from untrusted input.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// An FxHash-style hasher (rotate–xor–multiply per word).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// Deterministic, cheap-to-hash map for hot-path keys.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// Deterministic, cheap-to-hash set for hot-path keys.
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unseeded_and_deterministic() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write(b"multilateral peering");
        b.write(b"multilateral peering");
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write(b"multilateral peerinG");
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn containers_work_with_copy_keys() {
        let mut m: FxHashMap<(u16, u32), usize> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert((i as u16 % 13, i), i as usize);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&(5, 5)], 5);
        let s: FxHashSet<u32> = (0..100).collect();
        assert!(s.contains(&42));
    }
}
