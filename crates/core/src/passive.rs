//! Passive inference from collector archives (§4.2), as a streaming,
//! shardable pipeline.
//!
//! Walk every archived route (RIB dumps and non-transient updates),
//! sanitize the AS path, identify which IXP the attached RS communities
//! belong to (via the dictionary), pin-point the *RS setter* — the
//! member that applied them — and push reachability observations into
//! an [`ObservationSink`] for the link-inference stage.
//!
//! The workload is embarrassingly parallel per collector:
//! [`harvest_passive_sharded`] fans collectors out across threads, each
//! shard folding into its own sink ([`MergeSink`]) and
//! [`PassiveStats`], and the shard states merge — commutatively for
//! stats and inference state, in collector order for collected
//! observation vectors — to exactly the serial result. On a single
//! thread the sharded entry points fall back to the serial fold
//! directly: shard/merge overhead cannot be amortized without
//! parallelism (the `BENCH_passive.json` regression this fixes).
//!
//! Two input shapes share one route processor:
//!
//! * **structs** — [`harvest_passive`] walks decoded
//!   [`MrtArchive`]s (`MrtRibEntry` / `RouteAttrs` per route);
//! * **views** — [`harvest_passive_bytes`] walks wire-encoded
//!   [`PassiveBytes`] through zero-copy cursors
//!   ([`mlpeer_bgp::view::MrtBytes`]), reusing per-harvest scratch
//!   buffers so the hot loop allocates nothing per route. The two paths
//!   are byte-identical — same observations, same stats, any thread or
//!   chunk count — asserted by the `*_matches_struct` tests here and
//!   the ecosystem-scale checks in `tests/columnar_equivalence.rs`.
//!
//! Setter pin-pointing follows §4.2's three cases, given the IXP's
//! known members on the path:
//!
//! 1. fewer than two members → cannot pin-point, drop;
//! 2. exactly two members → the one closest to the origin is the setter;
//! 3. more than two → locate the p2p edge among them using inferred AS
//!    relationships; the setter is the member on the origin side of it.

use std::ops::{Add, AddAssign};

use mlpeer_bgp::mrt::MrtArchive;
use mlpeer_bgp::view::{MrtBytes, RibCursor};
use mlpeer_bgp::{Asn, CommunitySet, Prefix};
use mlpeer_ixp::ixp::IxpId;
use mlpeer_ixp::scheme::RsAction;
use mlpeer_topo::infer::InferredRelationships;
use mlpeer_topo::relationship::Relationship;
use rayon::prelude::*;

use mlpeer_data::collector::{PassiveBytes, PassiveDataset};

use crate::connectivity::ConnectivityData;
use crate::dict::CommunityDictionary;
use crate::hash::{FxHashMap, FxHashSet};
use crate::infer::{Observation, ObservationSource};
use crate::sink::{MergeSink, ObservationSink};

/// Passive-pipeline parameters.
#[derive(Debug, Clone)]
pub struct PassiveConfig {
    /// An announcement withdrawn within this many seconds is transient
    /// and ignored ("we also filtered out transient AS paths", §5).
    pub transient_secs: u32,
}

impl Default for PassiveConfig {
    fn default() -> Self {
        PassiveConfig {
            transient_secs: 6 * 3600,
        }
    }
}

/// Statistics from a passive run (for reports and tests). Per-shard
/// stats sum ([`Add`] / [`merge`](PassiveStats::merge)) to exactly the
/// serial totals — every field is a plain count.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PassiveStats {
    /// Routes examined.
    pub routes_seen: usize,
    /// Dropped: bogon ASN in path.
    pub dropped_bogon: usize,
    /// Dropped: path cycle.
    pub dropped_cycle: usize,
    /// Dropped: transient announcement.
    pub dropped_transient: usize,
    /// Routes with communities that no scheme identified.
    pub unidentified: usize,
    /// Routes where the setter could not be pin-pointed (case 1).
    pub setter_unknown: usize,
    /// Observations emitted.
    pub observations: usize,
    /// Corrupt MRT records quarantined by the lossy ingest path
    /// ([`harvest_passive_bytes_lossy`]); zero on the strict paths.
    pub quarantined: usize,
}

impl PassiveStats {
    /// Fold another shard's counts into this one.
    pub fn merge(&mut self, other: &PassiveStats) {
        self.routes_seen += other.routes_seen;
        self.dropped_bogon += other.dropped_bogon;
        self.dropped_cycle += other.dropped_cycle;
        self.dropped_transient += other.dropped_transient;
        self.unidentified += other.unidentified;
        self.setter_unknown += other.setter_unknown;
        self.observations += other.observations;
        self.quarantined += other.quarantined;
    }
}

impl AddAssign for PassiveStats {
    fn add_assign(&mut self, rhs: PassiveStats) {
        self.merge(&rhs);
    }
}

impl Add for PassiveStats {
    type Output = PassiveStats;

    fn add(mut self, rhs: PassiveStats) -> PassiveStats {
        self += rhs;
        self
    }
}

/// Per-IXP RS-member sets in hashed form, resolved once per harvest
/// instead of once per route (`ConnectivityData::rs_members` builds a
/// fresh ordered set on every call — fine at a report boundary, not in
/// a loop over every archived route). IXP ids are dense (`IxpId(0..n)`
/// from the generator), so the outer dimension is a flat `Vec` indexed
/// by the id — the per-route lookup is a bounds check, not a hash.
#[derive(Debug, Clone, Default)]
struct MemberIndex {
    per_ixp: Vec<FxHashSet<Asn>>,
}

impl MemberIndex {
    fn build(conn: &ConnectivityData) -> Self {
        let mut per_ixp: Vec<FxHashSet<Asn>> = Vec::new();
        for ixp in conn.ixps() {
            let i = usize::from(ixp.0);
            if i >= per_ixp.len() {
                per_ixp.resize_with(i + 1, FxHashSet::default);
            }
            per_ixp[i] = conn.rs_members(ixp).into_iter().collect();
        }
        MemberIndex { per_ixp }
    }

    #[inline]
    fn members(&self, ixp: IxpId) -> Option<&FxHashSet<Asn>> {
        self.per_ixp.get(usize::from(ixp.0))
    }
}

/// Run the passive pipeline over a dataset, streaming observations into
/// `sink`.
pub fn harvest_passive<S: ObservationSink>(
    dataset: &PassiveDataset,
    dict: &CommunityDictionary,
    conn: &ConnectivityData,
    rels: &InferredRelationships,
    cfg: &PassiveConfig,
    sink: &mut S,
) -> PassiveStats {
    let index = MemberIndex::build(conn);
    let mut stats = PassiveStats::default();
    for (_, archive) in &dataset.collectors {
        harvest_archive(archive, dict, &index, rels, cfg, sink, &mut stats);
    }
    stats
}

/// One unit of sharded work. RIB entries are independent, so a
/// collector's RIB splits into contiguous chunks; the update stream
/// stays whole per collector because transient filtering pairs
/// announcements with their withdrawals across the stream.
enum ShardUnit<'a> {
    Rib(&'a [mlpeer_bgp::mrt::MrtRibEntry]),
    Updates(&'a MrtArchive),
}

/// Run the passive pipeline sharded across threads: per collector, and
/// within a collector per RIB chunk, so the fan-out scales with cores
/// rather than with the collector count. Each shard folds into its own
/// `S`; shard sinks merge in input order and shard stats sum,
/// reproducing the serial [`harvest_passive`] exactly — for any thread
/// or chunk count (see the `sharded_passive_matches_serial` tests).
pub fn harvest_passive_sharded<S>(
    dataset: &PassiveDataset,
    dict: &CommunityDictionary,
    conn: &ConnectivityData,
    rels: &InferredRelationships,
    cfg: &PassiveConfig,
) -> (S, PassiveStats)
where
    S: ObservationSink + MergeSink + Default + Send,
{
    let index = MemberIndex::build(conn);
    // One worker means the fan-out can only add shard/merge overhead
    // (BENCH_passive measured 0.92x at 1 thread): take the serial path.
    if rayon::current_num_threads() <= 1 {
        let mut sink = S::default();
        let mut stats = PassiveStats::default();
        for (_, archive) in &dataset.collectors {
            harvest_archive(archive, dict, &index, rels, cfg, &mut sink, &mut stats);
        }
        return (sink, stats);
    }
    // ~4 chunks per worker balances stragglers without drowning in
    // merge overhead; chunking never changes the merged result. The
    // floor keeps chunks big enough that per-shard sink setup and the
    // merge fold stay amortized.
    let total_rib: usize = dataset.collectors.iter().map(|(_, a)| a.rib.len()).sum();
    let chunk_len = shard_chunk_len(total_rib);
    let mut units: Vec<ShardUnit<'_>> = Vec::new();
    for (_, archive) in &dataset.collectors {
        for chunk in archive.rib.chunks(chunk_len) {
            units.push(ShardUnit::Rib(chunk));
        }
        if !archive.updates.is_empty() {
            units.push(ShardUnit::Updates(archive));
        }
    }
    units
        .par_iter()
        .map(|unit| {
            let mut sink = S::default();
            let mut stats = PassiveStats::default();
            match unit {
                ShardUnit::Rib(entries) => {
                    process_rib_entries(entries, dict, &index, rels, &mut sink, &mut stats)
                }
                ShardUnit::Updates(archive) => {
                    process_update_stream(archive, dict, &index, rels, cfg, &mut sink, &mut stats)
                }
            }
            (sink, stats)
        })
        .reduce(
            || (S::default(), PassiveStats::default()),
            |(mut sink, mut stats), (shard_sink, shard_stats)| {
                sink.merge(shard_sink);
                stats.merge(&shard_stats);
                (sink, stats)
            },
        )
}

/// Chunk length for sharded RIB fan-out: ~4 chunks per worker, floored
/// so per-shard setup and merge folds stay amortized.
fn shard_chunk_len(total_rib: usize) -> usize {
    (total_rib / (rayon::current_num_threads() * 4).max(1)).max(2048)
}

/// One *addressable* unit of distributable passive work — the
/// wire-shippable form of the in-process shard units above. A worker
/// process regenerates the dataset locally and resolves these indices
/// against it, so only a few integers cross the process boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkUnit {
    /// RIB entries `[start, end)` of the collector at index
    /// `collector`.
    Rib {
        /// Collector index in `dataset.collectors`.
        collector: u32,
        /// First RIB entry (inclusive).
        start: u64,
        /// Past-the-end RIB entry (exclusive).
        end: u64,
    },
    /// The whole update stream of the collector at index `collector`
    /// (transient filtering pairs announcements with their withdrawals
    /// across the stream, so it never splits).
    Updates {
        /// Collector index in `dataset.collectors`.
        collector: u32,
    },
}

/// Enumerate a dataset's work units in **serial order** — per
/// collector: RIB chunks first, then the update stream — so harvesting
/// the units in order and concatenating the observations reproduces
/// [`harvest_passive`] exactly, for any `chunk_len` and any contiguous
/// partition of the unit list.
pub fn passive_work_units(dataset: &PassiveDataset, chunk_len: usize) -> Vec<WorkUnit> {
    let chunk_len = chunk_len.max(1);
    let mut units = Vec::new();
    for (c, (_, archive)) in dataset.collectors.iter().enumerate() {
        let mut start = 0usize;
        while start < archive.rib.len() {
            let end = (start + chunk_len).min(archive.rib.len());
            units.push(WorkUnit::Rib {
                collector: c as u32,
                start: start as u64,
                end: end as u64,
            });
            start = end;
        }
        if !archive.updates.is_empty() {
            units.push(WorkUnit::Updates {
                collector: c as u32,
            });
        }
    }
    units
}

/// Approximate route count of one unit — the balancing weight the
/// distributed coordinator partitions by.
pub fn work_unit_weight(dataset: &PassiveDataset, unit: &WorkUnit) -> usize {
    match *unit {
        WorkUnit::Rib { start, end, .. } => (end.saturating_sub(start)) as usize,
        WorkUnit::Updates { collector } => dataset
            .collectors
            .get(collector as usize)
            .map(|(_, a)| a.updates.len())
            .unwrap_or(0),
    }
}

/// Harvest exactly `units`, in the given order, into `sink` — the
/// distributed worker's entry point (and the coordinator's in-process
/// fallback). Indices outside the dataset are skipped or clamped, so a
/// stale unit list can never panic the worker.
pub fn harvest_passive_units<S: ObservationSink>(
    dataset: &PassiveDataset,
    dict: &CommunityDictionary,
    conn: &ConnectivityData,
    rels: &InferredRelationships,
    cfg: &PassiveConfig,
    units: &[WorkUnit],
    sink: &mut S,
) -> PassiveStats {
    let index = MemberIndex::build(conn);
    let mut stats = PassiveStats::default();
    for unit in units {
        match *unit {
            WorkUnit::Rib {
                collector,
                start,
                end,
            } => {
                let Some((_, archive)) = dataset.collectors.get(collector as usize) else {
                    continue;
                };
                let len = archive.rib.len() as u64;
                let (s, e) = (start.min(len) as usize, end.min(len) as usize);
                if s < e {
                    process_rib_entries(&archive.rib[s..e], dict, &index, rels, sink, &mut stats);
                }
            }
            WorkUnit::Updates { collector } => {
                let Some((_, archive)) = dataset.collectors.get(collector as usize) else {
                    continue;
                };
                process_update_stream(archive, dict, &index, rels, cfg, sink, &mut stats);
            }
        }
    }
    stats
}

/// Per-harvest scratch reused across every route of the view-based
/// path, so the hot loop performs no allocation after warm-up.
#[derive(Debug, Default)]
struct RouteScratch {
    path: Vec<Asn>,
    communities: CommunitySet,
}

/// Run the passive pipeline over the **columnar** dataset: wire-encoded
/// archives walked through zero-copy cursors, no per-route heap
/// structures. Byte-identical to [`harvest_passive`] over the decoded
/// struct form of the same bytes.
pub fn harvest_passive_bytes<S: ObservationSink>(
    data: &PassiveBytes,
    dict: &CommunityDictionary,
    conn: &ConnectivityData,
    rels: &InferredRelationships,
    cfg: &PassiveConfig,
    sink: &mut S,
) -> PassiveStats {
    let index = MemberIndex::build(conn);
    let mut stats = PassiveStats::default();
    let mut scratch = RouteScratch::default();
    for (_, archive) in &data.collectors {
        harvest_archive_views(
            archive,
            dict,
            &index,
            rels,
            cfg,
            sink,
            &mut stats,
            &mut scratch,
        );
    }
    stats
}

/// Degraded-mode ingest: validate each collector's **raw wire bytes**
/// lossily ([`MrtBytes::validate_lossy`]), quarantining corrupt
/// records instead of failing the harvest, then run the view-based
/// pipeline over what survived. Dropped records are tallied in
/// [`PassiveStats::quarantined`] (a truncated tail counts as one);
/// on clean input this is byte-identical to
/// [`harvest_passive_bytes`] with `quarantined == 0`.
#[allow(clippy::too_many_arguments)]
pub fn harvest_passive_bytes_lossy<S: ObservationSink>(
    collectors: &[(String, mlpeer_bgp::Bytes)],
    dict: &CommunityDictionary,
    conn: &ConnectivityData,
    rels: &InferredRelationships,
    cfg: &PassiveConfig,
    sink: &mut S,
) -> PassiveStats {
    let index = MemberIndex::build(conn);
    let mut stats = PassiveStats::default();
    let mut scratch = RouteScratch::default();
    for (_, wire) in collectors {
        let (archive, report) = MrtBytes::validate_lossy(wire.clone());
        stats.quarantined +=
            (report.quarantined + u64::from(report.truncated_tail_bytes > 0)) as usize;
        harvest_archive_views(
            &archive,
            dict,
            &index,
            rels,
            cfg,
            sink,
            &mut stats,
            &mut scratch,
        );
    }
    stats
}

/// One unit of sharded work over the columnar dataset: a RIB
/// record-index range, or a collector's whole update stream (transient
/// filtering pairs announcements with their withdrawals).
enum ByteShardUnit<'a> {
    Rib {
        archive: &'a MrtBytes,
        start: usize,
        end: usize,
    },
    Updates(&'a MrtBytes),
}

/// The sharded counterpart of [`harvest_passive_bytes`]: record-index
/// ranges fan out across threads (splitting a cursor range never
/// touches the arena), merging to exactly the serial result. Falls
/// back to the serial fold on a single thread, like
/// [`harvest_passive_sharded`].
pub fn harvest_passive_bytes_sharded<S>(
    data: &PassiveBytes,
    dict: &CommunityDictionary,
    conn: &ConnectivityData,
    rels: &InferredRelationships,
    cfg: &PassiveConfig,
) -> (S, PassiveStats)
where
    S: ObservationSink + MergeSink + Default + Send,
{
    let index = MemberIndex::build(conn);
    if rayon::current_num_threads() <= 1 {
        let mut sink = S::default();
        let mut stats = PassiveStats::default();
        let mut scratch = RouteScratch::default();
        for (_, archive) in &data.collectors {
            harvest_archive_views(
                archive,
                dict,
                &index,
                rels,
                cfg,
                &mut sink,
                &mut stats,
                &mut scratch,
            );
        }
        return (sink, stats);
    }
    let chunk_len = shard_chunk_len(data.rib_len());
    let mut units: Vec<ByteShardUnit<'_>> = Vec::new();
    for (_, archive) in &data.collectors {
        let mut start = 0;
        while start < archive.rib_len() {
            let end = (start + chunk_len).min(archive.rib_len());
            units.push(ByteShardUnit::Rib {
                archive,
                start,
                end,
            });
            start = end;
        }
        if archive.update_len() > 0 {
            units.push(ByteShardUnit::Updates(archive));
        }
    }
    units
        .par_iter()
        .map(|unit| {
            let mut sink = S::default();
            let mut stats = PassiveStats::default();
            let mut scratch = RouteScratch::default();
            match unit {
                ByteShardUnit::Rib {
                    archive,
                    start,
                    end,
                } => process_rib_views(
                    archive.rib_range(*start, *end),
                    dict,
                    &index,
                    rels,
                    &mut sink,
                    &mut stats,
                    &mut scratch,
                ),
                ByteShardUnit::Updates(archive) => process_update_views(
                    archive,
                    dict,
                    &index,
                    rels,
                    cfg,
                    &mut sink,
                    &mut stats,
                    &mut scratch,
                ),
            }
            (sink, stats)
        })
        .reduce(
            || (S::default(), PassiveStats::default()),
            |(mut sink, mut stats), (shard_sink, shard_stats)| {
                sink.merge(shard_sink);
                stats.merge(&shard_stats);
                (sink, stats)
            },
        )
}

/// One shard: every route of one collector's columnar archive.
#[allow(clippy::too_many_arguments)]
fn harvest_archive_views<S: ObservationSink>(
    archive: &MrtBytes,
    dict: &CommunityDictionary,
    index: &MemberIndex,
    rels: &InferredRelationships,
    cfg: &PassiveConfig,
    sink: &mut S,
    stats: &mut PassiveStats,
    scratch: &mut RouteScratch,
) {
    process_rib_views(
        archive.rib_cursor(),
        dict,
        index,
        rels,
        sink,
        stats,
        scratch,
    );
    process_update_views(archive, dict, index, rels, cfg, sink, stats, scratch);
}

/// RIB record views: the allocation-free hot loop. Path and community
/// decode go into the reused scratch buffers; the shared
/// [`process_route`] keeps the two input shapes byte-identical.
#[allow(clippy::too_many_arguments)]
fn process_rib_views<S: ObservationSink>(
    cursor: RibCursor<'_>,
    dict: &CommunityDictionary,
    index: &MemberIndex,
    rels: &InferredRelationships,
    sink: &mut S,
    stats: &mut PassiveStats,
    scratch: &mut RouteScratch,
) {
    for view in cursor {
        stats.routes_seen += 1;
        view.path_dedup_into(&mut scratch.path);
        view.communities_into(&mut scratch.communities);
        process_route(
            &scratch.path,
            &scratch.communities,
            view.prefix(),
            dict,
            index,
            rels,
            sink,
            stats,
        );
    }
}

/// The update stream through views, with transient filtering — the
/// mirror of [`process_update_stream`] (stable announcements must
/// materialize into the pending map either way; per-route decode still
/// reads the arena in place).
#[allow(clippy::too_many_arguments)]
fn process_update_views<S: ObservationSink>(
    archive: &MrtBytes,
    dict: &CommunityDictionary,
    index: &MemberIndex,
    rels: &InferredRelationships,
    cfg: &PassiveConfig,
    sink: &mut S,
    stats: &mut PassiveStats,
    scratch: &mut RouteScratch,
) {
    let mut pending: FxHashMap<(u16, Prefix), PendingRoute> = FxHashMap::default();
    for view in archive.update_cursor() {
        for w in view.withdrawn() {
            if let Some((t0, _, _)) = pending.get(&(view.peer_index(), w)) {
                if view.timestamp().saturating_sub(*t0) < cfg.transient_secs {
                    pending.remove(&(view.peer_index(), w));
                    stats.dropped_transient += 1;
                }
            }
        }
        if view.has_attrs() {
            view.path_dedup_into(&mut scratch.path);
            view.communities_into(&mut scratch.communities);
            for p in view.nlri() {
                pending.insert(
                    (view.peer_index(), p),
                    (
                        view.timestamp(),
                        scratch.path.clone(),
                        scratch.communities.clone(),
                    ),
                );
            }
        }
    }
    let mut stable: Vec<((u16, Prefix), PendingRoute)> = pending.into_iter().collect();
    stable.sort_unstable_by_key(|(key, _)| *key);
    for ((_, prefix), (_, path, communities)) in stable {
        stats.routes_seen += 1;
        process_route(&path, &communities, prefix, dict, index, rels, sink, stats);
    }
}

/// One shard: every route of one collector's archive.
fn harvest_archive<S: ObservationSink>(
    archive: &MrtArchive,
    dict: &CommunityDictionary,
    index: &MemberIndex,
    rels: &InferredRelationships,
    cfg: &PassiveConfig,
    sink: &mut S,
    stats: &mut PassiveStats,
) {
    process_rib_entries(&archive.rib, dict, index, rels, sink, stats);
    process_update_stream(archive, dict, index, rels, cfg, sink, stats);
}

/// RIB snapshot entries (independent per entry).
fn process_rib_entries<S: ObservationSink>(
    entries: &[mlpeer_bgp::mrt::MrtRibEntry],
    dict: &CommunityDictionary,
    index: &MemberIndex,
    rels: &InferredRelationships,
    sink: &mut S,
    stats: &mut PassiveStats,
) {
    for entry in entries {
        stats.routes_seen += 1;
        process_route(
            &entry.attrs.as_path.dedup_prepends(),
            &entry.attrs.communities,
            entry.prefix,
            dict,
            index,
            rels,
            sink,
            stats,
        );
    }
}

/// The update stream, with transient filtering (whole per collector).
fn process_update_stream<S: ObservationSink>(
    archive: &MrtArchive,
    dict: &CommunityDictionary,
    index: &MemberIndex,
    rels: &InferredRelationships,
    cfg: &PassiveConfig,
    sink: &mut S,
    stats: &mut PassiveStats,
) {
    for (path, communities, prefix) in stable_updates(archive, cfg.transient_secs, stats) {
        stats.routes_seen += 1;
        process_route(&path, &communities, prefix, dict, index, rels, sink, stats);
    }
}

/// A pending announcement: timestamp, deduplicated path, communities.
type PendingRoute = (u32, Vec<Asn>, mlpeer_bgp::CommunitySet);

/// Extract announcements from the update stream that were *not*
/// withdrawn within the transient window.
fn stable_updates(
    archive: &MrtArchive,
    transient_secs: u32,
    stats: &mut PassiveStats,
) -> Vec<(Vec<Asn>, mlpeer_bgp::CommunitySet, Prefix)> {
    // (peer, prefix) → announce timestamp of the last announcement.
    // Hashed for the hot insert/remove churn; drained through a sort at
    // the end so downstream processing order stays deterministic.
    let mut out = Vec::new();
    let mut pending: FxHashMap<(u16, Prefix), PendingRoute> = FxHashMap::default();
    for u in &archive.updates {
        for w in &u.update.withdrawn {
            if let Some((t0, _, _)) = pending.get(&(u.peer_index, *w)) {
                if u.timestamp.saturating_sub(*t0) < transient_secs {
                    pending.remove(&(u.peer_index, *w));
                    stats.dropped_transient += 1;
                }
            }
        }
        if let Some(attrs) = &u.update.attrs {
            for p in &u.update.nlri {
                pending.insert(
                    (u.peer_index, *p),
                    (
                        u.timestamp,
                        attrs.as_path.dedup_prepends(),
                        attrs.communities.clone(),
                    ),
                );
            }
        }
    }
    let mut stable: Vec<((u16, Prefix), PendingRoute)> = pending.into_iter().collect();
    stable.sort_unstable_by_key(|(key, _)| *key);
    for ((_, prefix), (_, path, communities)) in stable {
        out.push((path, communities, prefix));
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn process_route<S: ObservationSink>(
    path: &[Asn],
    communities: &mlpeer_bgp::CommunitySet,
    prefix: Prefix,
    dict: &CommunityDictionary,
    index: &MemberIndex,
    rels: &InferredRelationships,
    sink: &mut S,
    stats: &mut PassiveStats,
) {
    // §5 path sanitation.
    if path.iter().any(|a| a.is_path_bogon()) {
        stats.dropped_bogon += 1;
        return;
    }
    if has_cycle(path) {
        stats.dropped_cycle += 1;
        return;
    }
    if communities.is_empty() {
        return;
    }
    // Which IXP set these communities?
    let Some(identified) = dict.identify(communities) else {
        stats.unidentified += 1;
        return;
    };
    // Pin-point the setter among the IXP's members on the path.
    static NO_MEMBERS: std::sync::OnceLock<FxHashSet<Asn>> = std::sync::OnceLock::new();
    let members = index
        .members(identified.ixp)
        .unwrap_or_else(|| NO_MEMBERS.get_or_init(FxHashSet::default));
    let Some(setter) = pinpoint_setter(path, members, rels, &identified.actions) else {
        stats.setter_unknown += 1;
        return;
    };
    stats.observations += 1;
    sink.push(Observation {
        ixp: identified.ixp,
        member: setter,
        prefix,
        actions: identified.actions,
        source: ObservationSource::Passive,
    });
}

/// §4.2's three-case RS-setter identification, shared by the passive
/// pipeline and the member-LG active fallback.
///
/// * fewer than two known members on the path → `None` (case 1);
/// * exactly two → the one closest to the origin (case 2);
/// * more than two → the member on the origin side of the p2p edge
///   located with inferred relationships, falling back to the member
///   closest to the origin (case 3).
///
/// The decoded `actions` prune impossible crossings: a setter never
/// EXCLUDEs itself, and the member that *received* the route across the
/// route server must be allowed by the setter's decoded policy.
pub fn pinpoint_setter(
    path: &[Asn],
    members: &FxHashSet<Asn>,
    rels: &InferredRelationships,
    actions: &[RsAction],
) -> Option<Asn> {
    let on_path: Vec<usize> = (0..path.len())
        .filter(|&i| members.contains(&path[i]))
        .collect();
    if on_path.len() < 2 {
        return None;
    }
    let policy = mlpeer_ixp::policy::ExportPolicy::from_actions(actions.iter().copied());
    let self_excluded: FxHashSet<Asn> = actions
        .iter()
        .filter_map(|a| match a {
            RsAction::Exclude(p) => Some(*p),
            _ => None,
        })
        .collect();
    // The route-server crossing joins two *adjacent* members (the
    // receiver re-announced the setter's route directly). Candidate
    // crossings are the adjacent member pairs consistent with the
    // decoded filter.
    let adjacent: Vec<usize> = on_path
        .windows(2)
        .filter(|w| w[1] == w[0] + 1)
        .map(|w| w[0])
        .filter(|&i| {
            let (receiver, setter) = (path[i], path[i + 1]);
            policy.allows(receiver) && !self_excluded.contains(&setter)
        })
        .collect();
    if adjacent.is_empty() {
        // Members scattered (partial connectivity hides the receiver):
        // with exactly two members the paper's case 2 picks the one
        // closest to the origin; more than two stays ambiguous.
        return if on_path.len() == 2 && !self_excluded.contains(&path[on_path[1]]) {
            Some(path[on_path[1]])
        } else {
            None
        };
    }
    // Valley-free paths cross at most one peer edge, so prefer the
    // adjacent pair inferred p2p. Failing that, an observer that is
    // *itself* a member (an RS feeder, or the member LG host) received
    // the route on its own RS session, so the crossing is the leading
    // pair — relationship inference cannot help there because the
    // observer never appears mid-path. Then try a pair with no inferred
    // relationship. The setter is always the origin-side member of the
    // chosen pair.
    let rel_of = |i: usize| rels.rel(path[i], path[i + 1]);
    if let Some(&i) = adjacent
        .iter()
        .find(|&&i| rel_of(i) == Some(Relationship::P2p))
    {
        return Some(path[i + 1]);
    }
    if adjacent.first() == Some(&0) {
        return Some(path[1]);
    }
    if let Some(&i) = adjacent.iter().find(|&&i| rel_of(i).is_none()) {
        return Some(path[i + 1]);
    }
    // Every remaining candidate pair is classified as a transit edge. A
    // single one is the hybrid transit-over-RS crossing of §5.6 (it
    // sits closest to the origin). Several mean a member re-announced a
    // customer's route into the RS with its own communities riding on
    // the customer chain — attributing the setter by position would
    // routinely pick the customer and fabricate its reachability, so
    // the case stays ambiguous and is dropped (conservative, like the
    // paper's reciprocity requirement).
    match adjacent[..] {
        [only] => Some(path[only + 1]),
        _ => None,
    }
}

fn has_cycle(path: &[Asn]) -> bool {
    for (i, a) in path.iter().enumerate() {
        for (j, b) in path.iter().enumerate().skip(i + 1) {
            if a == b && j - i > 1 {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::ConnSource;
    use crate::dict::{CommunityDictionary, DictEntry};
    use crate::infer::LinkInferencer;
    use crate::sink::CountingSink;
    use mlpeer_bgp::mrt::{MrtRibEntry, MrtUpdate};
    use mlpeer_bgp::route::RouteAttrs;
    use mlpeer_bgp::update::UpdateMessage;
    use mlpeer_bgp::{AsPath, CommunitySet};
    use mlpeer_ixp::scheme::{CommunityScheme, RsAction, SchemeStyle};
    use mlpeer_topo::infer::{infer_relationships, InferConfig};

    fn dict_and_conn() -> (CommunityDictionary, ConnectivityData) {
        // One DE-CIX-like IXP (6695) with members 101, 102, 103.
        let mut scheme = CommunityScheme::new(Asn(6695), SchemeStyle::AsnBased);
        for m in [101u32, 102, 103] {
            scheme.register_member(Asn(m));
        }
        let mut conn = ConnectivityData::default();
        for m in [101u32, 102, 103] {
            conn.record(IxpId(0), Asn(m), ConnSource::LookingGlass);
        }
        let dict = CommunityDictionary::new(vec![DictEntry {
            ixp: IxpId(0),
            name: "DE-CIX".into(),
            scheme,
            rs_members: conn.rs_members(IxpId(0)),
        }]);
        (dict, conn)
    }

    fn archive_with(entries: Vec<(Vec<u32>, &str, &str)>) -> PassiveDataset {
        // entries: (path, communities, prefix)
        let mut a = MrtArchive::new();
        let idx = a.add_peer(Asn(999), "10.0.0.1".parse().unwrap());
        for (path, comm, prefix) in entries {
            let attrs = RouteAttrs::new(
                AsPath::from_seq(path.into_iter().map(Asn)),
                "10.0.0.2".parse().unwrap(),
            )
            .with_communities(comm.parse::<CommunitySet>().unwrap());
            a.rib.push(MrtRibEntry {
                peer_index: idx,
                originated: 0,
                prefix: prefix.parse().unwrap(),
                attrs,
            });
        }
        PassiveDataset {
            collectors: vec![("rv".into(), a)],
            vps: vec![],
        }
    }

    fn no_rels() -> InferredRelationships {
        infer_relationships(&[], &InferConfig::default())
    }

    fn harvest_collect(
        ds: &PassiveDataset,
        dict: &CommunityDictionary,
        conn: &ConnectivityData,
        rels: &InferredRelationships,
    ) -> (Vec<Observation>, PassiveStats) {
        let mut obs = Vec::new();
        let stats = harvest_passive(ds, dict, conn, rels, &Default::default(), &mut obs);
        (obs, stats)
    }

    #[test]
    fn figure4_feeder_scenario() {
        // E(999) ← D(102) ← {A(101), B(103)} via the route server.
        // Routes: E D A with A's communities, E D B with B's, E D C…
        let (dict, conn) = dict_and_conn();
        let ds = archive_with(vec![
            (
                vec![999, 102, 101],
                "0:6695 6695:102 6695:103",
                "10.1.0.0/24",
            ),
            (vec![999, 102, 103], "6695:6695", "10.3.0.0/24"),
        ]);
        let (obs, stats) = harvest_collect(&ds, &dict, &conn, &no_rels());
        assert_eq!(stats.observations, 2);
        // Setter = member closest to origin (case 2).
        assert_eq!(obs[0].member, Asn(101));
        assert_eq!(obs[0].ixp, IxpId(0));
        assert!(obs[0].actions.contains(&RsAction::None));
        assert!(obs[0].actions.contains(&RsAction::Include(Asn(102))));
        assert_eq!(obs[1].member, Asn(103));
        assert_eq!(obs[1].actions, vec![RsAction::All]);
    }

    #[test]
    fn sanitation_drops_bogons_and_cycles() {
        let (dict, conn) = dict_and_conn();
        let ds = archive_with(vec![
            (vec![999, 23456, 101], "6695:6695", "10.1.0.0/24"),
            (vec![999, 102, 999, 101], "6695:6695", "10.2.0.0/24"),
            (vec![999, 102, 101], "6695:6695", "10.3.0.0/24"),
        ]);
        let (obs, stats) = harvest_collect(&ds, &dict, &conn, &no_rels());
        assert_eq!(stats.dropped_bogon, 1);
        assert_eq!(stats.dropped_cycle, 1);
        assert_eq!(obs.len(), 1);
    }

    #[test]
    fn single_member_on_path_cannot_pinpoint() {
        let (dict, conn) = dict_and_conn();
        // Only member 101 on the path: case 1, dropped.
        let ds = archive_with(vec![(vec![999, 101], "6695:6695", "10.1.0.0/24")]);
        let (obs, stats) = harvest_collect(&ds, &dict, &conn, &no_rels());
        assert!(obs.is_empty());
        assert_eq!(stats.setter_unknown, 1);
    }

    #[test]
    fn case3_uses_relationships() {
        let (dict, conn) = dict_and_conn();
        // Path 999 103 102 101 with all three on path. Teach the
        // relationship inference that 103–102 is c2p (so not the peer
        // edge) and 102–101 is p2p (RS edge): setter = 101.
        let teaching_paths: Vec<Vec<Asn>> = vec![
            // 102 and 101 peer (seen only from below); 103 buys from 102.
            vec![Asn(201), Asn(102), Asn(101), Asn(301)],
            vec![Asn(302), Asn(101), Asn(102), Asn(202)],
            vec![Asn(999), Asn(102), Asn(103)],
            vec![Asn(998), Asn(102), Asn(103)],
            vec![Asn(201), Asn(102), Asn(103)],
        ];
        let rels = infer_relationships(
            &teaching_paths,
            &InferConfig {
                clique_size: 0,
                ..Default::default()
            },
        );
        assert_eq!(rels.rel(Asn(101), Asn(102)), Some(Relationship::P2p));
        let ds = archive_with(vec![(
            vec![999, 103, 102, 101],
            "0:6695 6695:102 6695:103",
            "10.1.0.0/24",
        )]);
        let (obs, _) = harvest_collect(&ds, &dict, &conn, &rels);
        assert_eq!(obs.len(), 1);
        assert_eq!(
            obs[0].member,
            Asn(101),
            "setter is on the origin side of the p2p edge"
        );
    }

    #[test]
    fn transient_updates_filtered() {
        let (dict, conn) = dict_and_conn();
        let mut a = MrtArchive::new();
        let idx = a.add_peer(Asn(999), "10.0.0.1".parse().unwrap());
        let attrs = RouteAttrs::new(
            AsPath::from_seq([Asn(999), Asn(102), Asn(101)]),
            "10.0.0.2".parse().unwrap(),
        )
        .with_communities("6695:6695 0:103".parse().unwrap());
        // Announced at t=100, withdrawn at t=1000 (< 6h): transient.
        a.updates.push(MrtUpdate {
            peer_index: idx,
            timestamp: 100,
            update: UpdateMessage::announce(attrs.clone(), vec!["10.5.0.0/24".parse().unwrap()]),
        });
        a.updates.push(MrtUpdate {
            peer_index: idx,
            timestamp: 1_000,
            update: UpdateMessage::withdraw(vec!["10.5.0.0/24".parse().unwrap()]),
        });
        // A second announcement that stays up.
        a.updates.push(MrtUpdate {
            peer_index: idx,
            timestamp: 2_000,
            update: UpdateMessage::announce(attrs, vec!["10.6.0.0/24".parse().unwrap()]),
        });
        let ds = PassiveDataset {
            collectors: vec![("rv".into(), a)],
            vps: vec![],
        };
        let (obs, stats) = harvest_collect(&ds, &dict, &conn, &no_rels());
        assert_eq!(stats.dropped_transient, 1);
        assert_eq!(obs.len(), 1);
        assert_eq!(obs[0].prefix, "10.6.0.0/24".parse().unwrap());
        assert_eq!(obs[0].source, ObservationSource::Passive);
    }

    #[test]
    fn unidentified_communities_counted() {
        let (dict, conn) = dict_and_conn();
        let ds = archive_with(vec![(vec![999, 102, 101], "3356:2001", "10.1.0.0/24")]);
        let (obs, stats) = harvest_collect(&ds, &dict, &conn, &no_rels());
        assert!(obs.is_empty());
        assert_eq!(stats.unidentified, 1);
    }

    #[test]
    fn stats_add_is_fieldwise() {
        let a = PassiveStats {
            routes_seen: 1,
            dropped_bogon: 2,
            dropped_cycle: 3,
            dropped_transient: 4,
            unidentified: 5,
            setter_unknown: 6,
            observations: 7,
            quarantined: 8,
        };
        let b = PassiveStats {
            routes_seen: 10,
            dropped_bogon: 20,
            dropped_cycle: 30,
            dropped_transient: 40,
            unidentified: 50,
            setter_unknown: 60,
            observations: 70,
            quarantined: 80,
        };
        let sum = a.clone() + b.clone();
        assert_eq!(sum.routes_seen, 11);
        assert_eq!(sum.dropped_bogon, 22);
        assert_eq!(sum.dropped_cycle, 33);
        assert_eq!(sum.dropped_transient, 44);
        assert_eq!(sum.unidentified, 55);
        assert_eq!(sum.setter_unknown, 66);
        assert_eq!(sum.observations, 77);
        let mut via_merge = a;
        via_merge.merge(&b);
        assert_eq!(via_merge, sum);
    }

    /// The sharding contract on a hand-built multi-collector dataset:
    /// identical observations (collector order), stats, and inference
    /// state. The ecosystem-scale version lives in the workspace
    /// integration tests.
    #[test]
    fn sharded_matches_serial_on_multi_collector_dataset() {
        let (dict, conn) = dict_and_conn();
        let ds_a = archive_with(vec![
            (
                vec![999, 102, 101],
                "0:6695 6695:102 6695:103",
                "10.1.0.0/24",
            ),
            (vec![999, 102, 103], "6695:6695", "10.3.0.0/24"),
        ]);
        let ds_b = archive_with(vec![
            (vec![999, 23456, 101], "6695:6695", "10.4.0.0/24"),
            (vec![999, 103, 102], "6695:6695 0:101", "10.5.0.0/24"),
        ]);
        let dataset = PassiveDataset {
            collectors: vec![
                ("rv".into(), ds_a.collectors[0].1.clone()),
                ("ris".into(), ds_b.collectors[0].1.clone()),
            ],
            vps: vec![],
        };
        let rels = no_rels();

        let mut serial_sink: (Vec<Observation>, LinkInferencer) = Default::default();
        let serial_stats = harvest_passive(
            &dataset,
            &dict,
            &conn,
            &rels,
            &Default::default(),
            &mut serial_sink,
        );
        let (sharded_sink, sharded_stats) = harvest_passive_sharded::<(
            Vec<Observation>,
            LinkInferencer,
        )>(
            &dataset, &dict, &conn, &rels, &Default::default()
        );
        assert_eq!(sharded_stats, serial_stats);
        assert_eq!(
            sharded_sink.0, serial_sink.0,
            "observations in collector order"
        );
        assert_eq!(
            sharded_sink.1.finalize(&conn),
            serial_sink.1.finalize(&conn),
            "identical inference state"
        );
        assert!(serial_stats.observations > 0);
    }

    /// The distributable-unit contract: enumerating every [`WorkUnit`]
    /// and harvesting them in order — whole, or split across disjoint
    /// contiguous slices and folded in slice order — reproduces
    /// [`harvest_passive`] exactly, for any chunk length. Out-of-range
    /// units are ignored, never panic.
    #[test]
    fn work_units_in_order_match_serial() {
        let (dict, conn) = dict_and_conn();
        let ds_a = archive_with(vec![
            (
                vec![999, 102, 101],
                "0:6695 6695:102 6695:103",
                "10.1.0.0/24",
            ),
            (vec![999, 102, 103], "6695:6695", "10.3.0.0/24"),
            (vec![999, 103, 101], "6695:6695", "10.6.0.0/24"),
        ]);
        let ds_b = archive_with(vec![
            (vec![999, 23456, 101], "6695:6695", "10.4.0.0/24"),
            (vec![999, 103, 102], "6695:6695 0:101", "10.5.0.0/24"),
        ]);
        let dataset = PassiveDataset {
            collectors: vec![
                ("rv".into(), ds_a.collectors[0].1.clone()),
                ("ris".into(), ds_b.collectors[0].1.clone()),
            ],
            vps: vec![],
        };
        let rels = no_rels();
        let cfg = PassiveConfig::default();

        let mut serial_sink: (Vec<Observation>, LinkInferencer) = Default::default();
        let serial_stats = harvest_passive(&dataset, &dict, &conn, &rels, &cfg, &mut serial_sink);
        let serial_links = serial_sink.1.finalize(&conn);

        for chunk_len in [1usize, 2, 1024] {
            let units = passive_work_units(&dataset, chunk_len);
            assert!(units.iter().all(
                |u| work_unit_weight(&dataset, u) > 0 || matches!(u, WorkUnit::Updates { .. })
            ));
            // Whole list in one call.
            let mut whole: (Vec<Observation>, LinkInferencer) = Default::default();
            let whole_stats =
                harvest_passive_units(&dataset, &dict, &conn, &rels, &cfg, &units, &mut whole);
            assert_eq!(whole_stats, serial_stats);
            assert_eq!(whole.0, serial_sink.0);
            assert_eq!(whole.1.finalize(&conn), serial_links);

            // Split into contiguous slices (incl. an empty middle one),
            // folded in slice order via the merge sink.
            let mid = units.len() / 2;
            let slices: [&[WorkUnit]; 3] = [&units[..mid], &[], &units[mid..]];
            let mut folded: (Vec<Observation>, LinkInferencer) = Default::default();
            let mut folded_stats = PassiveStats::default();
            for slice in slices {
                let mut shard: (Vec<Observation>, LinkInferencer) = Default::default();
                let stats =
                    harvest_passive_units(&dataset, &dict, &conn, &rels, &cfg, slice, &mut shard);
                folded.0.extend(shard.0);
                crate::sink::MergeSink::merge(&mut folded.1, shard.1);
                folded_stats.merge(&stats);
            }
            assert_eq!(folded_stats, serial_stats);
            assert_eq!(folded.0, serial_sink.0);
            assert_eq!(folded.1.finalize(&conn), serial_links);
        }

        // Stale indices are ignored or clamped, never a panic.
        let stale = [
            WorkUnit::Rib {
                collector: 99,
                start: 0,
                end: 10,
            },
            WorkUnit::Updates { collector: 99 },
            WorkUnit::Rib {
                collector: 0,
                start: 1_000,
                end: 2_000,
            },
        ];
        let mut sink: (Vec<Observation>, LinkInferencer) = Default::default();
        let stats = harvest_passive_units(&dataset, &dict, &conn, &rels, &cfg, &stale, &mut sink);
        assert_eq!(stats, PassiveStats::default());
        assert!(sink.0.is_empty());
    }

    /// The columnar contract: harvesting the wire-encoded archives
    /// through zero-copy views — serial or sharded — is byte-identical
    /// to the struct path, across RIB entries, transient-filtered
    /// update streams, bogons, cycles and unidentified communities.
    #[test]
    fn bytes_harvest_matches_struct_harvest() {
        let (dict, conn) = dict_and_conn();
        // A dataset exercising every drop path plus an update stream.
        let mut ds = archive_with(vec![
            (
                vec![999, 102, 101],
                "0:6695 6695:102 6695:103",
                "10.1.0.0/24",
            ),
            (vec![999, 102, 103], "6695:6695", "10.3.0.0/24"),
            (vec![999, 23456, 101], "6695:6695", "10.4.0.0/24"),
            (vec![999, 102, 999, 101], "6695:6695", "10.2.0.0/24"),
            (vec![999, 102, 101], "3356:2001", "10.6.0.0/24"),
        ]);
        let archive = &mut ds.collectors[0].1;
        let attrs = RouteAttrs::new(
            AsPath::from_seq([Asn(999), Asn(102), Asn(101)]),
            "10.0.0.2".parse().unwrap(),
        )
        .with_communities("6695:6695 0:103".parse().unwrap());
        archive.updates.push(MrtUpdate {
            peer_index: 0,
            timestamp: 100,
            update: UpdateMessage::announce(attrs.clone(), vec!["10.5.0.0/24".parse().unwrap()]),
        });
        archive.updates.push(MrtUpdate {
            peer_index: 0,
            timestamp: 1_000,
            update: UpdateMessage::withdraw(vec!["10.5.0.0/24".parse().unwrap()]),
        });
        archive.updates.push(MrtUpdate {
            peer_index: 0,
            timestamp: 2_000,
            update: UpdateMessage::announce(attrs, vec!["10.7.0.0/24".parse().unwrap()]),
        });
        let rels = no_rels();
        let cfg = PassiveConfig::default();

        let mut struct_sink: (Vec<Observation>, LinkInferencer) = Default::default();
        let struct_stats = harvest_passive(&ds, &dict, &conn, &rels, &cfg, &mut struct_sink);

        let bytes = ds.to_bytes();
        let mut view_sink: (Vec<Observation>, LinkInferencer) = Default::default();
        let view_stats = harvest_passive_bytes(&bytes, &dict, &conn, &rels, &cfg, &mut view_sink);
        assert_eq!(view_stats, struct_stats);
        assert_eq!(view_sink.0, struct_sink.0, "observations byte-identical");
        assert_eq!(view_sink.1.finalize(&conn), struct_sink.1.finalize(&conn));
        assert!(struct_stats.observations > 0);
        assert!(struct_stats.dropped_transient > 0, "update path exercised");

        let (sharded_sink, sharded_stats) = harvest_passive_bytes_sharded::<(
            Vec<Observation>,
            LinkInferencer,
        )>(&bytes, &dict, &conn, &rels, &cfg);
        assert_eq!(sharded_stats, struct_stats);
        assert_eq!(sharded_sink.0, struct_sink.0);
        assert_eq!(
            sharded_sink.1.finalize(&conn),
            struct_sink.1.finalize(&conn)
        );
    }

    /// The degraded-ingest contract: on clean wire input the lossy
    /// harvest is byte-identical to the strict columnar path with
    /// nothing quarantined; corrupting one record quarantines exactly
    /// that record and the harvest equals the struct path over the
    /// dataset without it.
    #[test]
    fn lossy_harvest_quarantines_and_matches() {
        let (dict, conn) = dict_and_conn();
        let routes = vec![
            (
                vec![999, 102, 101],
                "0:6695 6695:102 6695:103",
                "10.1.0.0/24",
            ),
            (vec![999, 102, 103], "6695:6695", "10.3.0.0/24"),
            (vec![999, 102, 101], "6695:6695", "10.5.0.0/24"),
        ];
        let ds = archive_with(routes.clone());
        let rels = no_rels();
        let cfg = PassiveConfig::default();
        let wire: Vec<(String, mlpeer_bgp::Bytes)> = ds
            .collectors
            .iter()
            .map(|(n, a)| (n.clone(), a.encode()))
            .collect();

        let mut strict_sink: (Vec<Observation>, LinkInferencer) = Default::default();
        let strict_stats =
            harvest_passive_bytes(&ds.to_bytes(), &dict, &conn, &rels, &cfg, &mut strict_sink);
        let mut lossy_sink: (Vec<Observation>, LinkInferencer) = Default::default();
        let lossy_stats =
            harvest_passive_bytes_lossy(&wire, &dict, &conn, &rels, &cfg, &mut lossy_sink);
        assert_eq!(lossy_stats, strict_stats);
        assert_eq!(lossy_sink.0, strict_sink.0, "clean input: byte-identical");
        assert_eq!(lossy_stats.quarantined, 0);

        // Corrupt the first RIB record's embedded frame type byte: the
        // record frames fine but fails body validation.
        let mut bad = wire[0].1.to_vec();
        let mut frames = Vec::new();
        let mut pos = 0usize;
        while pos < bad.len() {
            frames.push(pos);
            let rlen = u32::from_be_bytes([bad[pos + 2], bad[pos + 3], bad[pos + 4], bad[pos + 5]])
                as usize;
            pos += 6 + rlen;
        }
        // Record 0 is the peer table; record 1 the first RIB entry. Its
        // body is peer(2) + originated(4) + flen(4), then the embedded
        // frame whose type byte sits at frame offset 18.
        bad[frames[1] + 6 + 10 + 18] ^= 0xff;
        let bad_wire = vec![("rv".to_string(), mlpeer_bgp::Bytes::from(bad))];

        let mut ds_minus = archive_with(routes);
        ds_minus.collectors[0].1.rib.remove(0);
        let mut minus_sink: (Vec<Observation>, LinkInferencer) = Default::default();
        let mut minus_stats =
            harvest_passive(&ds_minus, &dict, &conn, &rels, &cfg, &mut minus_sink);
        minus_stats.quarantined = 1;

        let mut qsink: (Vec<Observation>, LinkInferencer) = Default::default();
        let qstats = harvest_passive_bytes_lossy(&bad_wire, &dict, &conn, &rels, &cfg, &mut qsink);
        assert_eq!(qstats, minus_stats, "only the corrupt record is lost");
        assert_eq!(qsink.0, minus_sink.0);
        assert_eq!(qsink.1.finalize(&conn), minus_sink.1.finalize(&conn));
    }

    #[test]
    fn counting_sink_matches_stats() {
        let (dict, conn) = dict_and_conn();
        let ds = archive_with(vec![
            (vec![999, 102, 101], "6695:6695", "10.1.0.0/24"),
            (vec![999, 102, 103], "6695:6695", "10.3.0.0/24"),
        ]);
        let mut sink = CountingSink::default();
        let stats = harvest_passive(
            &ds,
            &dict,
            &conn,
            &no_rels(),
            &Default::default(),
            &mut sink,
        );
        assert_eq!(sink.0, stats.observations);
        assert_eq!(sink.0, 2);
    }
}
