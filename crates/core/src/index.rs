//! Query indexes over inference results — the serving layer's read
//! path.
//!
//! The pipeline ends in an [`MlpLinkSet`] plus the observation stream
//! that produced it. Operators query that artifact by *member* ("who
//! does AS X reach over the DE-CIX route server?"), by *IXP*, and by
//! *prefix* ("which IXPs carry prefix P multilaterally?"). A linear
//! scan answers each of those in O(total links) or O(total
//! observations); [`LinkIndex`] answers them in O(result) via an
//! inverted member index and a binary [`PrefixTrie`] (longest-prefix
//! walks built on [`Prefix::covers`] / [`Prefix::parent`] semantics).
//!
//! Every indexed query has a linear-scan reference implementation in
//! [`scan`]; the unit tests (and the serve crate's benchmarks) assert
//! the two produce byte-identical results, so the index can never
//! silently drift from the ground truth it accelerates.

use std::collections::{BTreeMap, BTreeSet};

use mlpeer_bgp::{Asn, Prefix};
use mlpeer_ixp::ixp::IxpId;

use crate::infer::{MlpLinkSet, Observation};
use crate::intern::AsnTable;

/// One prefix announcement retained for serving: at `.1`, member `.2`
/// announced prefix `.0` through the route server.
pub type Announcement = (Prefix, IxpId, Asn);

/// Matches for a prefix query, split by specificity.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PrefixMatches {
    /// Announcements of exactly the queried prefix.
    pub exact: BTreeSet<Announcement>,
    /// Announcements of strictly less-specific (covering) prefixes.
    pub covering: BTreeSet<Announcement>,
    /// Announcements of strictly more-specific (covered) prefixes.
    pub covered: BTreeSet<Announcement>,
}

impl PrefixMatches {
    /// Total announcements across all three specificity classes.
    pub fn total(&self) -> usize {
        self.exact.len() + self.covering.len() + self.covered.len()
    }
}

/// A binary trie over [`Prefix`]es, one level per address bit, with the
/// announcements of a prefix stored at its terminal node.
///
/// Exact lookups walk `len` bits; covering lookups walk the
/// [`Prefix::parent`] chain (each hop is one exact lookup); covered
/// lookups enumerate the subtree below the queried prefix — all
/// O(result), never O(index).
#[derive(Debug, Clone, Default)]
pub struct PrefixTrie {
    root: TrieNode,
    prefixes: usize,
    announcements: usize,
}

#[derive(Debug, Clone, Default)]
struct TrieNode {
    children: [Option<Box<TrieNode>>; 2],
    /// The prefix terminating here, once anything was inserted for it.
    prefix: Option<Prefix>,
    /// Announcements of that prefix (insertion order; [`LinkIndex`]
    /// inserts from a sorted, deduplicated set).
    entries: Vec<(IxpId, Asn)>,
}

/// Bit `i` (0 = most significant) of a network address.
#[inline]
fn addr_bit(addr: u32, i: u8) -> usize {
    ((addr >> (31 - i)) & 1) as usize
}

impl PrefixTrie {
    /// Insert one announcement. Duplicate `(prefix, ixp, member)`
    /// triples are the caller's to avoid (build from a set).
    pub fn insert(&mut self, prefix: Prefix, ixp: IxpId, member: Asn) {
        let mut node = &mut self.root;
        for i in 0..prefix.len() {
            let b = addr_bit(prefix.network_u32(), i);
            node = node.children[b].get_or_insert_with(Box::default);
        }
        if node.prefix.is_none() {
            node.prefix = Some(prefix);
            self.prefixes += 1;
        }
        node.entries.push((ixp, member));
        self.announcements += 1;
    }

    /// Distinct prefixes with at least one announcement.
    pub fn prefix_count(&self) -> usize {
        self.prefixes
    }

    /// Total announcements stored.
    pub fn announcement_count(&self) -> usize {
        self.announcements
    }

    /// The node terminating `prefix`, if present.
    fn node_at(&self, prefix: &Prefix) -> Option<&TrieNode> {
        let mut node = &self.root;
        for i in 0..prefix.len() {
            node = node.children[addr_bit(prefix.network_u32(), i)].as_deref()?;
        }
        Some(node)
    }

    /// Announcements of exactly `prefix`.
    pub fn exact(&self, prefix: &Prefix) -> &[(IxpId, Asn)] {
        match self.node_at(prefix) {
            Some(n) if n.prefix.is_some() => &n.entries,
            _ => &[],
        }
    }

    /// Announcements of prefixes strictly covering `prefix`: one exact
    /// probe per [`Prefix::parent`] hop up to `/0`.
    pub fn covering(&self, prefix: &Prefix) -> BTreeSet<Announcement> {
        let mut out = BTreeSet::new();
        let mut q = prefix.parent();
        while let Some(p) = q {
            for &(ixp, member) in self.exact(&p) {
                out.insert((p, ixp, member));
            }
            q = p.parent();
        }
        out
    }

    /// Announcements of prefixes strictly covered by `prefix`: the
    /// subtree below its node, excluding the node itself.
    pub fn covered_by(&self, prefix: &Prefix) -> BTreeSet<Announcement> {
        let mut out = BTreeSet::new();
        if let Some(node) = self.node_at(prefix) {
            for child in node.children.iter().flatten() {
                collect_subtree(child, &mut out);
            }
        }
        out
    }

    /// Every distinct prefix with at least one announcement, in trie
    /// (depth-first address) order — the corpus the serving layer's
    /// publish-time body cache pre-renders.
    pub fn prefixes(&self) -> Vec<Prefix> {
        let mut out = Vec::with_capacity(self.prefixes);
        fn walk(node: &TrieNode, out: &mut Vec<Prefix>) {
            if let Some(p) = node.prefix {
                out.push(p);
            }
            for child in node.children.iter().flatten() {
                walk(child, out);
            }
        }
        walk(&self.root, &mut out);
        out
    }
}

fn collect_subtree(node: &TrieNode, out: &mut BTreeSet<Announcement>) {
    if let Some(p) = node.prefix {
        for &(ixp, member) in &node.entries {
            out.insert((p, ixp, member));
        }
    }
    for child in node.children.iter().flatten() {
        collect_subtree(child, out);
    }
}

/// Inverted indexes over an [`MlpLinkSet`] and its observation stream.
///
/// * **by member** — every IXP the member peers multilaterally at, with
///   the peer set per IXP;
/// * **by IXP** — delegated to the link set's own sorted per-IXP maps;
/// * **by prefix** — a [`PrefixTrie`] over the announcements of covered
///   members.
#[derive(Debug, Clone, Default)]
pub struct LinkIndex {
    /// ASN → dense [`crate::intern::AsnId`] over the linked members.
    members: AsnTable,
    /// Indexed by the interned id: the member's peer set per IXP. The
    /// lookup path is one u32-keyed hash probe plus a `Vec` index —
    /// never a wide-key hash.
    by_member: Vec<BTreeMap<IxpId, BTreeSet<Asn>>>,
    trie: PrefixTrie,
    links_total: usize,
}

impl LinkIndex {
    /// Build the index. Announcements are restricted to members the
    /// link set covers at the announcement's IXP, so prefix answers
    /// never cite reachability data the inference itself discarded.
    pub fn build(links: &MlpLinkSet, observations: &[Observation]) -> LinkIndex {
        Self::build_from_announcements(links, scan::announcements(links, observations))
    }

    /// Build the index from an already-filtered announcement corpus —
    /// the durable-store recovery path, where the corpus was persisted
    /// (it is exactly [`LinkIndex::announcements`] of the original
    /// index) and the raw observation stream no longer exists. Feeding
    /// [`scan::announcements`] back through this constructor is
    /// identical to [`LinkIndex::build`].
    pub fn build_from_announcements(
        links: &MlpLinkSet,
        announcements: impl IntoIterator<Item = Announcement>,
    ) -> LinkIndex {
        let mut members = AsnTable::default();
        let mut by_member: Vec<BTreeMap<IxpId, BTreeSet<Asn>>> = Vec::new();
        let mut links_total = 0;
        fn slot<'m>(
            members: &mut AsnTable,
            by_member: &'m mut Vec<BTreeMap<IxpId, BTreeSet<Asn>>>,
            asn: Asn,
        ) -> &'m mut BTreeMap<IxpId, BTreeSet<Asn>> {
            let id = members.intern(asn);
            if id.index() == by_member.len() {
                by_member.push(BTreeMap::new());
            }
            &mut by_member[id.index()]
        }
        for (ixp, pairs) in &links.per_ixp {
            links_total += pairs.len();
            for &(a, b) in pairs {
                slot(&mut members, &mut by_member, a)
                    .entry(*ixp)
                    .or_default()
                    .insert(b);
                slot(&mut members, &mut by_member, b)
                    .entry(*ixp)
                    .or_default()
                    .insert(a);
            }
        }
        let mut trie = PrefixTrie::default();
        for (prefix, ixp, member) in announcements {
            trie.insert(prefix, ixp, member);
        }
        LinkIndex {
            members,
            by_member,
            trie,
            links_total,
        }
    }

    /// The member's peers per IXP, or `None` if the member has no
    /// inferred multilateral link anywhere.
    pub fn member_links(&self, asn: Asn) -> Option<&BTreeMap<IxpId, BTreeSet<Asn>>> {
        self.members.get(asn).map(|id| &self.by_member[id.index()])
    }

    /// Owned form of [`member_links`](LinkIndex::member_links) (empty
    /// map when absent), shaped exactly like [`scan::member_links`].
    pub fn member_links_owned(&self, asn: Asn) -> BTreeMap<IxpId, BTreeSet<Asn>> {
        self.member_links(asn).cloned().unwrap_or_default()
    }

    /// All specificity classes of announcements matching `prefix`.
    pub fn prefix_matches(&self, prefix: &Prefix) -> PrefixMatches {
        let exact: BTreeSet<Announcement> = self
            .trie
            .exact(prefix)
            .iter()
            .map(|&(ixp, member)| (*prefix, ixp, member))
            .collect();
        PrefixMatches {
            exact,
            covering: self.trie.covering(prefix),
            covered: self.trie.covered_by(prefix),
        }
    }

    /// Members with at least one link.
    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    /// The linked members, in interning (first-seen) order.
    pub fn members(&self) -> &[Asn] {
        self.members.asns()
    }

    /// Every distinct announced prefix in the trie.
    pub fn announced_prefixes(&self) -> Vec<Prefix> {
        self.trie.prefixes()
    }

    /// The full announcement corpus the trie holds, reconstructed as
    /// the sorted set it was built from. This is what the durable
    /// store persists per epoch: round-tripping it through
    /// [`LinkIndex::build_from_announcements`] reproduces the trie
    /// exactly, so recovered snapshots answer prefix queries (and hash
    /// to content ETags) byte-identically.
    pub fn announcements(&self) -> BTreeSet<Announcement> {
        let mut out = BTreeSet::new();
        collect_subtree(&self.trie.root, &mut out);
        out
    }

    /// Distinct announced prefixes in the trie.
    pub fn prefix_count(&self) -> usize {
        self.trie.prefix_count()
    }

    /// Announcements in the trie.
    pub fn announcement_count(&self) -> usize {
        self.trie.announcement_count()
    }

    /// Per-IXP link total (equals `MlpLinkSet::per_ixp_total`).
    pub fn links_total(&self) -> usize {
        self.links_total
    }
}

/// Linear-scan reference implementations of every indexed query. The
/// serving benches measure the index against these; the tests assert
/// byte-identical results.
pub mod scan {
    use super::*;

    /// O(total links): the member's peers per IXP.
    pub fn member_links(links: &MlpLinkSet, asn: Asn) -> BTreeMap<IxpId, BTreeSet<Asn>> {
        let mut out: BTreeMap<IxpId, BTreeSet<Asn>> = BTreeMap::new();
        for (ixp, pairs) in &links.per_ixp {
            for &(a, b) in pairs {
                if a == asn {
                    out.entry(*ixp).or_default().insert(b);
                } else if b == asn {
                    out.entry(*ixp).or_default().insert(a);
                }
            }
        }
        out
    }

    /// O(total observations): the deduplicated announcement set of
    /// covered members — the corpus the trie is built from.
    pub fn announcements(
        links: &MlpLinkSet,
        observations: &[Observation],
    ) -> BTreeSet<Announcement> {
        observations
            .iter()
            .filter(|o| {
                links
                    .covered
                    .get(&o.ixp)
                    .is_some_and(|c| c.contains(&o.member))
            })
            .map(|o| (o.prefix, o.ixp, o.member))
            .collect()
    }

    /// O(total observations): prefix matches by full scan with
    /// [`Prefix::covers`] on both sides.
    pub fn prefix_matches(
        links: &MlpLinkSet,
        observations: &[Observation],
        prefix: &Prefix,
    ) -> PrefixMatches {
        let mut out = PrefixMatches::default();
        for ann in announcements(links, observations) {
            let p = ann.0;
            if p == *prefix {
                out.exact.insert(ann);
            } else if p.covers(prefix) {
                out.covering.insert(ann);
            } else if prefix.covers(&p) {
                out.covered.insert(ann);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::{ConnSource, ConnectivityData};
    use crate::infer::{infer_links, ObservationSource};
    use mlpeer_ixp::scheme::RsAction;

    fn obs(ixp: u16, member: u32, prefix: &str, actions: Vec<RsAction>) -> Observation {
        Observation {
            ixp: IxpId(ixp),
            member: Asn(member),
            prefix: prefix.parse().unwrap(),
            actions,
            source: ObservationSource::Passive,
        }
    }

    /// Two IXPs, four members, one EXCLUDE, plus an observation for a
    /// member connectivity cannot place (must not enter the trie).
    fn fixture() -> (MlpLinkSet, Vec<Observation>) {
        let mut conn = ConnectivityData::default();
        for m in [1u32, 2, 3, 4] {
            conn.record(IxpId(0), Asn(m), ConnSource::LookingGlass);
        }
        for m in [1u32, 2] {
            conn.record(IxpId(1), Asn(m), ConnSource::Website);
        }
        let observations = vec![
            obs(0, 1, "10.1.0.0/24", vec![RsAction::All]),
            obs(0, 1, "10.1.1.0/24", vec![RsAction::All]),
            obs(
                0,
                2,
                "10.2.0.0/16",
                vec![RsAction::All, RsAction::Exclude(Asn(4))],
            ),
            obs(0, 3, "10.2.4.0/24", vec![RsAction::All]),
            obs(0, 4, "0.0.0.0/0", vec![RsAction::All]),
            obs(1, 1, "10.1.0.0/24", vec![RsAction::All]),
            obs(1, 2, "10.2.0.0/16", vec![RsAction::All]),
            obs(0, 99, "10.9.0.0/24", vec![RsAction::All]), // unplaceable
        ];
        let links = infer_links(&conn, &observations);
        (links, observations)
    }

    #[test]
    fn member_lookup_matches_scan_byte_for_byte() {
        let (links, observations) = fixture();
        let index = LinkIndex::build(&links, &observations);
        for asn in 0u32..=100 {
            let fast = index.member_links_owned(Asn(asn));
            let slow = scan::member_links(&links, Asn(asn));
            assert_eq!(fast, slow, "AS{asn}");
            assert_eq!(format!("{fast:?}"), format!("{slow:?}"), "AS{asn} bytes");
        }
        // The fixture actually links members at both IXPs.
        assert!(index.member_links(Asn(1)).is_some_and(|m| m.len() == 2));
    }

    #[test]
    fn prefix_lookup_matches_scan_byte_for_byte() {
        let (links, observations) = fixture();
        let index = LinkIndex::build(&links, &observations);
        for q in [
            "10.1.0.0/24",
            "10.1.0.0/16",
            "10.1.1.128/25",
            "10.2.0.0/16",
            "10.2.4.0/24",
            "10.0.0.0/8",
            "0.0.0.0/0",
            "192.0.2.0/24",
            "10.9.0.0/24",
        ] {
            let p: Prefix = q.parse().unwrap();
            let fast = index.prefix_matches(&p);
            let slow = scan::prefix_matches(&links, &observations, &p);
            assert_eq!(fast, slow, "{q}");
            assert_eq!(format!("{fast:?}"), format!("{slow:?}"), "{q} bytes");
        }
    }

    #[test]
    fn trie_specificity_classes() {
        let (links, observations) = fixture();
        let index = LinkIndex::build(&links, &observations);
        let m = index.prefix_matches(&"10.2.4.0/24".parse().unwrap());
        assert_eq!(m.exact.len(), 1, "exactly the /24 itself");
        // Covering: the /16 at both IXPs, plus the default route.
        assert_eq!(m.covering.len(), 3);
        assert!(
            m.covering.iter().any(|(p, _, _)| p.is_default()),
            "the /0 covers everything"
        );
        assert!(m.covered.is_empty());

        let wide = index.prefix_matches(&"10.0.0.0/8".parse().unwrap());
        assert!(wide.exact.is_empty());
        assert_eq!(wide.covering.len(), 1, "only the default route covers a /8");
        assert_eq!(
            wide.covered.len(),
            6,
            "every 10/8 announcement of a covered member"
        );
    }

    #[test]
    fn unplaceable_members_never_enter_the_trie() {
        let (links, observations) = fixture();
        let index = LinkIndex::build(&links, &observations);
        let m = index.prefix_matches(&"10.9.0.0/24".parse().unwrap());
        assert!(m.exact.is_empty(), "AS99 is not covered anywhere");
        assert_eq!(
            index.announcement_count(),
            scan::announcements(&links, &observations).len()
        );
    }

    #[test]
    fn duplicate_observations_deduplicate() {
        let (links, mut observations) = fixture();
        let dup = observations[0].clone();
        observations.push(dup);
        let index = LinkIndex::build(&links, &observations);
        let m = index.prefix_matches(&"10.1.0.0/24".parse().unwrap());
        // AS1 announced it at both IXPs; the duplicate adds nothing.
        assert_eq!(m.exact.len(), 2);
        assert_eq!(index.prefix_count(), 5);
    }

    #[test]
    fn slash32_and_default_round_trip_through_the_trie() {
        let mut trie = PrefixTrie::default();
        let host: Prefix = "203.0.113.37/32".parse().unwrap();
        let all: Prefix = "0.0.0.0/0".parse().unwrap();
        trie.insert(host, IxpId(0), Asn(7));
        trie.insert(all, IxpId(1), Asn(8));
        assert_eq!(trie.exact(&host), &[(IxpId(0), Asn(7))]);
        assert_eq!(trie.exact(&all), &[(IxpId(1), Asn(8))]);
        // /32 has 32 covering hops ending at /0.
        assert_eq!(
            trie.covering(&host),
            [(all, IxpId(1), Asn(8))].into_iter().collect()
        );
        // /0 covers the /32 and nothing covers /0.
        assert_eq!(
            trie.covered_by(&all),
            [(host, IxpId(0), Asn(7))].into_iter().collect()
        );
        assert!(trie.covering(&all).is_empty());
        assert_eq!(trie.prefix_count(), 2);
        assert_eq!(trie.announcement_count(), 2);
    }

    #[test]
    fn announcements_round_trip_through_rebuild() {
        let (links, observations) = fixture();
        let index = LinkIndex::build(&links, &observations);
        let corpus = index.announcements();
        assert_eq!(corpus, scan::announcements(&links, &observations));
        let rebuilt = LinkIndex::build_from_announcements(&links, corpus.iter().copied());
        assert_eq!(rebuilt.announcements(), corpus);
        assert_eq!(rebuilt.member_count(), index.member_count());
        assert_eq!(rebuilt.prefix_count(), index.prefix_count());
        assert_eq!(rebuilt.announcement_count(), index.announcement_count());
        for q in ["10.1.0.0/24", "10.2.4.0/24", "10.0.0.0/8", "0.0.0.0/0"] {
            let p: Prefix = q.parse().unwrap();
            assert_eq!(
                format!("{:?}", rebuilt.prefix_matches(&p)),
                format!("{:?}", index.prefix_matches(&p)),
                "{q}"
            );
        }
        for asn in 0u32..=100 {
            assert_eq!(
                rebuilt.member_links_owned(Asn(asn)),
                index.member_links_owned(Asn(asn))
            );
        }
    }

    #[test]
    fn counts_reflect_link_set() {
        let (links, observations) = fixture();
        let index = LinkIndex::build(&links, &observations);
        assert_eq!(index.links_total(), links.per_ixp_total());
        assert_eq!(index.member_count(), links.distinct_asns().len());
    }
}
