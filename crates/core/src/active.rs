//! Active inference via looking-glass queries (§4.1) and the query-cost
//! model (§4.3).
//!
//! Steps against an IXP's route-server LG:
//!
//! 1. `show ip bgp summary` → the connected networks `A_RS` (1 query);
//! 2. per member `a`: `show ip bgp neighbors <addr> routes` → `P_a`
//!    (`|A_RS|` queries);
//! 3. per selected prefix: `show ip bgp <prefix>` → the RS communities
//!    of *every* member announcing it.
//!
//! The §4.3 optimizations are implemented exactly:
//!
//! * sample 10 % of each member's prefixes, capped at 100 — the
//!   community values are consistent across a member's announcements;
//! * sort candidate prefixes by the number of announcing members `m_p`
//!   (Fig. 5: 48.4 % of DE-CIX prefixes arrive from more than one
//!   member), so one query covers many members;
//! * skip members already covered passively (Eq. 2).
//!
//! Like the passive pipeline, the queriers *stream*: decoded
//! observations go straight into an [`ObservationSink`] instead of a
//! materialized `Vec`, so a long LG campaign can fold into the
//! [`crate::infer::LinkInferencer`] as it runs.
//!
//! For IXPs without an RS LG, member LGs provide a partial view: "these
//! third-party LGs cannot provide the full view … but only for those
//! members that allow their routes to be advertised to the network that
//! operates the LG".

use std::collections::BTreeSet;

use mlpeer_bgp::{Asn, Prefix};
use mlpeer_data::lg::{
    parse_neighbor_routes, parse_prefix_output, parse_summary, LgCommand, LgTarget,
    LookingGlassHost,
};
use mlpeer_data::Sim;
use mlpeer_ixp::ixp::IxpId;

use crate::dict::CommunityDictionary;
use crate::hash::{FxHashMap, FxHashSet};
use crate::infer::{Observation, ObservationSource};
use crate::sink::ObservationSink;

/// Active-measurement parameters (§4.3 defaults).
#[derive(Debug, Clone)]
pub struct ActiveConfig {
    /// Fraction of each member's prefixes to cover.
    pub sample_frac: f64,
    /// Cap on prefixes per member.
    pub max_prefixes_per_member: usize,
}

impl Default for ActiveConfig {
    fn default() -> Self {
        ActiveConfig {
            sample_frac: 0.10,
            max_prefixes_per_member: 100,
        }
    }
}

/// Query accounting for one IXP (the Eq. 1 / Eq. 2 terms).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ActiveStats {
    /// Summary queries (the leading `1`).
    pub summary_queries: usize,
    /// Neighbor-routes queries (`|A_RS − A_RS^passive|`).
    pub neighbor_queries: usize,
    /// Prefix queries actually issued (`Σ P'_a` after optimization).
    pub prefix_queries: usize,
    /// What the prefix-query count would have been without the
    /// multiplicity optimization (one set of samples per member).
    pub naive_prefix_queries: usize,
    /// Querying every prefix of every member (the ~18× baseline).
    pub full_prefix_queries: usize,
    /// Members whose communities were obtained.
    pub members_covered: usize,
}

impl ActiveStats {
    /// Total cost `c` (Eq. 1/2).
    pub fn cost(&self) -> usize {
        self.summary_queries + self.neighbor_queries + self.prefix_queries
    }

    /// Wall-clock estimate at the paper's rate limit (1 query / 10 s).
    pub fn wall_clock_secs(&self, secs_per_query: u64) -> u64 {
        self.cost() as u64 * secs_per_query
    }
}

/// Run the full §4.1 algorithm against an IXP's route-server LG,
/// streaming observations into `sink`.
///
/// `skip` holds the members already covered by passive data (Eq. 2);
/// their neighbor-routes and prefix queries are avoided, though their
/// communities are still recorded when they ride along on a queried
/// prefix (free data).
pub fn query_rs_lg<S: ObservationSink>(
    sim: &Sim,
    lg: &LookingGlassHost,
    ixp: IxpId,
    dict: &CommunityDictionary,
    skip: &BTreeSet<Asn>,
    cfg: &ActiveConfig,
    sink: &mut S,
) -> ActiveStats {
    let mut stats = ActiveStats::default();
    let mut members_seen: FxHashSet<Asn> = FxHashSet::default();
    let entry = dict
        .entry(ixp)
        .expect("dictionary entry for the queried IXP");

    // Step 1: connectivity.
    let summary = lg.query(sim, &LgCommand::Summary);
    stats.summary_queries = 1;
    let members: Vec<(Asn, std::net::Ipv4Addr, usize)> = parse_summary(&summary);

    // Step 2: per-member prefixes (skipping passive-covered members).
    let mut prefixes_of: FxHashMap<Asn, Vec<Prefix>> = FxHashMap::default();
    for (asn, addr, _) in &members {
        if skip.contains(asn) {
            continue;
        }
        let text = lg.query(sim, &LgCommand::NeighborRoutes(*addr));
        stats.neighbor_queries += 1;
        prefixes_of.insert(*asn, parse_neighbor_routes(&text));
    }

    // Step 3: targets and the multiplicity-sorted plan.
    let mut target: FxHashMap<Asn, usize> = FxHashMap::default();
    for (asn, prefixes) in &prefixes_of {
        let t = ((prefixes.len() as f64 * cfg.sample_frac).ceil() as usize)
            .clamp(1, cfg.max_prefixes_per_member)
            .min(prefixes.len());
        target.insert(*asn, t);
        stats.naive_prefix_queries += t;
        stats.full_prefix_queries += prefixes.len();
    }
    let mut multiplicity: FxHashMap<Prefix, Vec<Asn>> = FxHashMap::default();
    for (asn, prefixes) in &prefixes_of {
        for p in prefixes {
            multiplicity.entry(*p).or_default().push(*asn);
        }
    }
    // Report boundary of the planner: the (count desc, prefix asc) sort
    // makes the plan deterministic regardless of map iteration order.
    let mut plan: Vec<(Prefix, usize)> = multiplicity.iter().map(|(p, v)| (*p, v.len())).collect();
    plan.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    let mut covered: FxHashMap<Asn, usize> = target.keys().map(|a| (*a, 0usize)).collect();
    let done = |covered: &FxHashMap<Asn, usize>, target: &FxHashMap<Asn, usize>| {
        target
            .iter()
            .all(|(a, t)| covered.get(a).copied().unwrap_or(0) >= *t)
    };
    for (prefix, _) in plan {
        if done(&covered, &target) {
            break;
        }
        // Only query if it advances someone's target.
        let helps = multiplicity[&prefix]
            .iter()
            .any(|a| covered.get(a).copied().unwrap_or(0) < target.get(a).copied().unwrap_or(0));
        if !helps {
            continue;
        }
        let text = lg.query(sim, &LgCommand::Prefix(prefix));
        stats.prefix_queries += 1;
        for path in parse_prefix_output(&text) {
            let Some(setter) = path.as_path.first_hop() else {
                continue;
            };
            // On an RS LG the first hop *is* the announcing member.
            let actions: Vec<_> = path
                .communities
                .iter()
                .filter_map(|c| entry.scheme.decode(c))
                .collect();
            members_seen.insert(setter);
            sink.push(Observation {
                ixp,
                member: setter,
                prefix,
                actions,
                source: ObservationSource::ActiveRsLg,
            });
            if let Some(c) = covered.get_mut(&setter) {
                *c += 1;
            }
        }
    }
    stats.members_covered = members_seen.len();
    stats
}

/// Query third-party member LGs for the RS communities of an IXP with
/// no route-server LG, streaming observations into `sink`. `candidates`
/// are prefixes worth asking about (from IRR route objects and
/// passively-seen prefixes); at most `budget` queries are spent per LG.
/// Setters are pin-pointed with the same §4.2 three-case logic as the
/// passive pipeline — a member LG also shows transit routes that may
/// carry RS communities from deeper in the path, so the first hop is
/// *not* necessarily the setter.
#[allow(clippy::too_many_arguments)]
pub fn query_member_lgs<S: ObservationSink>(
    sim: &Sim,
    lgs: &[&LookingGlassHost],
    ixp: IxpId,
    dict: &CommunityDictionary,
    rels: &mlpeer_topo::infer::InferredRelationships,
    candidates: &[Prefix],
    budget: usize,
    sink: &mut S,
) -> ActiveStats {
    let mut stats = ActiveStats::default();
    let mut members_seen: FxHashSet<Asn> = FxHashSet::default();
    let members: FxHashSet<Asn> = dict
        .entry(ixp)
        .map(|e| e.rs_members.iter().copied().collect())
        .unwrap_or_default();
    for lg in lgs {
        let LgTarget::Member(host) = lg.target else {
            continue;
        };
        for prefix in candidates.iter().take(budget) {
            let text = lg.query(sim, &LgCommand::Prefix(*prefix));
            stats.prefix_queries += 1;
            for path in parse_prefix_output(&text) {
                if path.communities.is_empty() {
                    continue;
                }
                let Some(identified) = dict.identify(&path.communities) else {
                    continue;
                };
                if identified.ixp != ixp {
                    continue;
                }
                // The LG host is the implicit first hop of every path.
                let mut full = vec![host];
                full.extend(path.as_path.dedup_prepends());
                let Some(setter) =
                    crate::passive::pinpoint_setter(&full, &members, rels, &identified.actions)
                else {
                    continue;
                };
                members_seen.insert(setter);
                sink.push(Observation {
                    ixp,
                    member: setter,
                    prefix: *prefix,
                    actions: identified.actions,
                    source: ObservationSource::ActiveMemberLg,
                });
            }
        }
    }
    stats.members_covered = members_seen.len();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::gather_connectivity;
    use crate::dict::dictionary_from_connectivity;
    use mlpeer_data::irr::{build_irr, IrrConfig};
    use mlpeer_data::lg::{build_lg_roster, LgDisplay};
    use mlpeer_ixp::{Ecosystem, EcosystemConfig};

    fn setup() -> Ecosystem {
        Ecosystem::generate(EcosystemConfig::tiny(81))
    }

    fn rs_query_collect(
        sim: &Sim,
        lg: &LookingGlassHost,
        ixp: IxpId,
        dict: &CommunityDictionary,
        skip: &BTreeSet<Asn>,
    ) -> (Vec<Observation>, ActiveStats) {
        let mut obs = Vec::new();
        let stats = query_rs_lg(sim, lg, ixp, dict, skip, &ActiveConfig::default(), &mut obs);
        (obs, stats)
    }

    #[test]
    fn rs_lg_full_run_covers_all_members() {
        let eco = setup();
        let sim = Sim::new(&eco);
        let irr = build_irr(&eco, &IrrConfig::default());
        let lgs = build_lg_roster(&sim, 1, 0, 0.0);
        let conn = gather_connectivity(&sim, &lgs, &irr);
        let dict = dictionary_from_connectivity(&eco, &conn);
        let decix = eco.ixp_by_name("DE-CIX").unwrap();
        let lg = lgs
            .iter()
            .find(|l| matches!(l.target, LgTarget::RouteServer(id) if id == decix.id))
            .unwrap();
        let (obs, stats) = rs_query_collect(&sim, lg, decix.id, &dict, &BTreeSet::new());
        assert!(!obs.is_empty());
        assert_eq!(stats.summary_queries, 1);
        assert_eq!(stats.neighbor_queries, decix.rs_member_count());
        // Every RS member covered (each announces ≥ 1 prefix).
        assert_eq!(stats.members_covered, decix.rs_member_count());
        // Eq. 1 structure.
        assert_eq!(
            stats.cost(),
            1 + stats.neighbor_queries + stats.prefix_queries
        );
        assert_eq!(stats.wall_clock_secs(10), stats.cost() as u64 * 10);
    }

    #[test]
    fn multiplicity_optimization_beats_naive_plan() {
        let eco = setup();
        let sim = Sim::new(&eco);
        let irr = build_irr(&eco, &IrrConfig::default());
        let lgs = build_lg_roster(&sim, 1, 0, 0.0);
        let conn = gather_connectivity(&sim, &lgs, &irr);
        let dict = dictionary_from_connectivity(&eco, &conn);
        let decix = eco.ixp_by_name("DE-CIX").unwrap();
        let lg = lgs
            .iter()
            .find(|l| matches!(l.target, LgTarget::RouteServer(id) if id == decix.id))
            .unwrap();
        let (_, stats) = rs_query_collect(&sim, lg, decix.id, &dict, &BTreeSet::new());
        assert!(
            stats.prefix_queries <= stats.naive_prefix_queries,
            "multiplicity sort never does worse: {} vs {}",
            stats.prefix_queries,
            stats.naive_prefix_queries
        );
        assert!(
            stats.full_prefix_queries > stats.naive_prefix_queries,
            "sampling cuts below querying everything"
        );
    }

    #[test]
    fn passive_exclusion_reduces_cost() {
        let eco = setup();
        let sim = Sim::new(&eco);
        let irr = build_irr(&eco, &IrrConfig::default());
        let lgs = build_lg_roster(&sim, 1, 0, 0.0);
        let conn = gather_connectivity(&sim, &lgs, &irr);
        let dict = dictionary_from_connectivity(&eco, &conn);
        let decix = eco.ixp_by_name("DE-CIX").unwrap();
        let lg = lgs
            .iter()
            .find(|l| matches!(l.target, LgTarget::RouteServer(id) if id == decix.id))
            .unwrap();
        let (_, base) = rs_query_collect(&sim, lg, decix.id, &dict, &BTreeSet::new());
        // Skip half the members as passively covered.
        let skip: BTreeSet<Asn> = decix.rs_member_asns().into_iter().step_by(2).collect();
        let (_, optimized) = rs_query_collect(&sim, lg, decix.id, &dict, &skip);
        assert!(optimized.neighbor_queries < base.neighbor_queries);
        assert!(optimized.cost() < base.cost(), "Eq. 2 < Eq. 1");
    }

    #[test]
    fn observations_decode_true_policies() {
        let eco = setup();
        let sim = Sim::new(&eco);
        let irr = build_irr(&eco, &IrrConfig::default());
        let lgs = build_lg_roster(&sim, 1, 0, 0.0);
        let conn = gather_connectivity(&sim, &lgs, &irr);
        let dict = dictionary_from_connectivity(&eco, &conn);
        let decix = eco.ixp_by_name("DE-CIX").unwrap();
        let lg = lgs
            .iter()
            .find(|l| matches!(l.target, LgTarget::RouteServer(id) if id == decix.id))
            .unwrap();
        let (obs, _) = rs_query_collect(&sim, lg, decix.id, &dict, &BTreeSet::new());
        // Spot-check: reconstructed policies must allow exactly what the
        // member's true effective policy allows, for observed prefixes.
        for o in obs.iter().take(200) {
            let member = decix.member(o.member).expect("observed member exists");
            let truth = member.effective_export(&o.prefix);
            let reconstructed =
                mlpeer_ixp::policy::ExportPolicy::from_actions(o.actions.iter().copied());
            for other in decix.rs_member_asns().into_iter().take(30) {
                if other == o.member {
                    continue;
                }
                assert_eq!(
                    truth.allows(other),
                    reconstructed.allows(other),
                    "member {} prefix {} peer {}",
                    o.member,
                    o.prefix,
                    other
                );
            }
        }
    }

    #[test]
    fn member_lg_gives_partial_view_for_lgless_ixp() {
        let eco = setup();
        let sim = Sim::new(&eco);
        let irr = build_irr(&eco, &IrrConfig::default());
        let rs_lgs = build_lg_roster(&sim, 1, 0, 0.0);
        let conn = gather_connectivity(&sim, &rs_lgs, &irr);
        let dict = dictionary_from_connectivity(&eco, &conn);
        // AMS-IX has no RS LG; use a member LG.
        let amsix = eco.ixp_by_name("AMS-IX").unwrap();
        let host_member = amsix
            .members
            .values()
            .find(|m| m.rs_member)
            .map(|m| m.asn)
            .unwrap();
        let lg = LookingGlassHost::new("lg.m", LgTarget::Member(host_member), LgDisplay::AllPaths);
        // Candidates: the members' own first prefixes.
        let candidates: Vec<Prefix> = amsix
            .rs_member_asns()
            .into_iter()
            .filter_map(|a| eco.internet.prefixes_of(a).first().copied())
            .collect();
        let no_rels = mlpeer_topo::infer::infer_relationships(
            &[],
            &mlpeer_topo::infer::InferConfig::default(),
        );
        let mut obs: Vec<Observation> = Vec::new();
        let stats = query_member_lgs(
            &sim,
            &[&lg],
            amsix.id,
            &dict,
            &no_rels,
            &candidates,
            500,
            &mut obs,
        );
        assert!(stats.prefix_queries > 0);
        // Partial but sound: every observation names a real RS member of
        // AMS-IX allowed toward the host.
        for o in &obs {
            assert_eq!(o.ixp, amsix.id);
            let m = amsix.member(o.member).expect("setter is a member");
            assert!(m.rs_member);
            assert_eq!(o.source, ObservationSource::ActiveMemberLg);
        }
    }
}
