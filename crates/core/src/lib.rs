//! # `mlpeer` — Inferring Multilateral Peering
//!
//! A production-quality implementation of the inference framework from
//! *Inferring Multilateral Peering* (Giotsas, Zhou, Luckie, claffy —
//! CoNEXT 2013): discover the peer-to-peer links established over IXP
//! route servers by mining the BGP community values members use to
//! control their route-server export filters.
//!
//! ## Pipeline
//!
//! ```text
//!  connectivity (who sessions with the RS)        reachability (export filters)
//!  ───────────────────────────────────────        ─────────────────────────────
//!  LG `show ip bgp summary`   [connectivity]      passive: Route Views / RIS
//!  IRR AS-SETs                                    archives  [passive]
//!  IXP member lists                               active: LG prefix queries
//!          └──────────────┬───────────────────────────────┘ [active]
//!                         ▼
//!         community dictionary + IXP identification  [dict]
//!                         ▼
//!         RS-setter pinpointing, policy reconstruction
//!             N_a = ⋂_p N_{a,p}   [passive, infer]
//!                         ▼
//!         reciprocal link inference (a ∈ N_b ∧ b ∈ N_a)  [infer]
//!                         ▼
//!         validation via public LGs [validate] · analyses [analysis]
//! ```
//!
//! [`live`] is the pipeline's incremental counterpart: it folds a
//! time-stepped BGP session stream (member churn, filter retunes,
//! announce/withdraw) with *retraction*, keeping the link set
//! byte-identical to a from-scratch harvest of the evolving state.
//!
//! Module → paper-section map: [`connectivity`] §4 (who sessions with
//! each RS), [`dict`] §4.2 (community dictionary + IXP
//! identification), [`passive`] §4.2 (archive mining, setter
//! pin-pointing), [`active`] §4.1/§4.3 (LG querying and its economics),
//! [`infer`] §4.1 steps 4–5 (export reach + reciprocal links),
//! [`live`] the §5.1-churn-driven incremental variant, [`validate`]
//! §5.1, [`reciprocity`] §4.4, [`analysis`] §5; [`index`], [`sink`],
//! [`hash`], [`intern`] and [`report`] are serving/engineering
//! substrate ([`intern`] is the dense-id layer the hot paths key on;
//! see the "Hot path & memory layout" section of
//! `docs/ARCHITECTURE.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod active;
pub mod analysis;
pub mod connectivity;
pub mod dict;
pub mod hash;
pub mod index;
pub mod infer;
pub mod intern;
pub mod live;
pub mod passive;
pub mod pipeline;
pub mod reciprocity;
pub mod report;
pub mod sink;
pub mod validate;

pub use connectivity::{ConnSource, ConnectivityData};
pub use dict::CommunityDictionary;
pub use index::{LinkIndex, PrefixMatches, PrefixTrie};
pub use infer::{infer_links, LinkInferencer, MlpLinkSet, Observation, ObservationSource};
pub use intern::{AsnId, AsnTable, MemberId, MemberTable, PrefixId, PrefixTable};
pub use live::{decode_message, full_harvest, LinkDelta, LiveEvent, LiveInferencer};
pub use sink::{CountingSink, MergeSink, ObservationSink};
