//! # `mlpeer` — Inferring Multilateral Peering
//!
//! A production-quality implementation of the inference framework from
//! *Inferring Multilateral Peering* (Giotsas, Zhou, Luckie, claffy —
//! CoNEXT 2013): discover the peer-to-peer links established over IXP
//! route servers by mining the BGP community values members use to
//! control their route-server export filters.
//!
//! ## Pipeline
//!
//! ```text
//!  connectivity (who sessions with the RS)        reachability (export filters)
//!  ───────────────────────────────────────        ─────────────────────────────
//!  LG `show ip bgp summary`   [connectivity]      passive: Route Views / RIS
//!  IRR AS-SETs                                    archives  [passive]
//!  IXP member lists                               active: LG prefix queries
//!          └──────────────┬───────────────────────────────┘ [active]
//!                         ▼
//!         community dictionary + IXP identification  [dict]
//!                         ▼
//!         RS-setter pinpointing, policy reconstruction
//!             N_a = ⋂_p N_{a,p}   [passive, infer]
//!                         ▼
//!         reciprocal link inference (a ∈ N_b ∧ b ∈ N_a)  [infer]
//!                         ▼
//!         validation via public LGs [validate] · analyses [analysis]
//! ```
//!
//! Every module maps to a paper section; see `DESIGN.md` for the full
//! experiment index.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod active;
pub mod analysis;
pub mod connectivity;
pub mod dict;
pub mod hash;
pub mod index;
pub mod infer;
pub mod passive;
pub mod reciprocity;
pub mod report;
pub mod sink;
pub mod validate;

pub use connectivity::{ConnSource, ConnectivityData};
pub use dict::CommunityDictionary;
pub use index::{LinkIndex, PrefixMatches, PrefixTrie};
pub use infer::{infer_links, LinkInferencer, MlpLinkSet, Observation, ObservationSource};
pub use sink::{CountingSink, MergeSink, ObservationSink};
