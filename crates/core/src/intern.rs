//! Interned identifiers for the inference hot paths.
//!
//! The pipeline's inner loops key maps by wide `Copy` values — `Asn`
//! (u32), `Prefix` (u32+u8), `(IxpId, Asn)` pairs — millions of times
//! at Table-2 scale. Interning replaces those with **dense u32
//! handles** handed out in first-seen order by a symbol table:
//!
//! * dense handles index flat `Vec`s where the old code hashed wide
//!   keys ([`crate::infer::LinkInferencer`]'s per-member reach table,
//!   [`crate::index::LinkIndex`]'s inverted member index);
//! * where a map stays sparse (per-member prefix edges), hashing a
//!   4-byte handle is cheaper than hashing the wide key;
//! * first-seen order makes iteration deterministic without a sort —
//!   the same property the unseeded [`crate::hash`] containers cannot
//!   offer.
//!
//! The handles are deliberately newtyped per domain ([`AsnId`],
//! [`PrefixId`], [`MemberId`]) so an index into one table cannot be
//! used against another. `resolve` is the inverse of `intern` for every
//! id the table issued — round-tripping is asserted by the tests here,
//! including the `/0` and `/32` prefix extremes and covers↔parent
//! chains the serving trie leans on.

use std::hash::Hash;

use mlpeer_bgp::{Asn, Prefix};
use mlpeer_ixp::ixp::IxpId;

use crate::hash::FxHashMap;

/// Dense handle for an interned [`Asn`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AsnId(pub u32);

/// Dense handle for an interned [`Prefix`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PrefixId(pub u32);

/// Dense handle for an interned `(IxpId, Asn)` membership pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MemberId(pub u32);

impl AsnId {
    /// The handle as a `Vec` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl PrefixId {
    /// The handle as a `Vec` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl MemberId {
    /// The handle as a `Vec` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A generic symbol table: value → dense u32 in first-seen order, with
/// O(1) reverse lookup.
#[derive(Debug, Clone)]
pub struct Interner<T> {
    ids: FxHashMap<T, u32>,
    values: Vec<T>,
}

impl<T> Default for Interner<T> {
    fn default() -> Self {
        Interner {
            ids: FxHashMap::default(),
            values: Vec::new(),
        }
    }
}

impl<T: Copy + Eq + Hash> Interner<T> {
    /// Intern `value`, returning its dense id (existing or fresh).
    #[inline]
    pub fn intern(&mut self, value: T) -> u32 {
        if let Some(&id) = self.ids.get(&value) {
            return id;
        }
        let id = self.values.len() as u32;
        self.ids.insert(value, id);
        self.values.push(value);
        id
    }

    /// The id of an already-interned value, if any.
    #[inline]
    pub fn get(&self, value: T) -> Option<u32> {
        self.ids.get(&value).copied()
    }

    /// The value behind an id this table issued. Panics on a foreign
    /// id — mixing tables is a logic error, not a recoverable state.
    #[inline]
    pub fn resolve(&self, id: u32) -> T {
        self.values[id as usize]
    }

    /// Number of distinct interned values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if nothing was interned yet.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The interned values in id order (id `i` is `values()[i]`).
    pub fn values(&self) -> &[T] {
        &self.values
    }
}

/// Symbol table for [`Asn`] → [`AsnId`].
#[derive(Debug, Clone, Default)]
pub struct AsnTable(Interner<Asn>);

impl AsnTable {
    /// Intern an ASN.
    #[inline]
    pub fn intern(&mut self, asn: Asn) -> AsnId {
        AsnId(self.0.intern(asn))
    }

    /// Look up an already-interned ASN.
    #[inline]
    pub fn get(&self, asn: Asn) -> Option<AsnId> {
        self.0.get(asn).map(AsnId)
    }

    /// The ASN behind an id.
    #[inline]
    pub fn resolve(&self, id: AsnId) -> Asn {
        self.0.resolve(id.0)
    }

    /// Distinct ASNs interned.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if nothing was interned yet.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The interned ASNs in id order (`AsnId(i)` is `asns()[i]`).
    pub fn asns(&self) -> &[Asn] {
        self.0.values()
    }
}

/// Symbol table for [`Prefix`] → [`PrefixId`].
///
/// Prefixes are packed into one u64 word (`network << 8 | len`) before
/// hashing, so the hot-path probe hashes a single word where the raw
/// `Prefix` struct hashes its fields separately.
#[derive(Debug, Clone, Default)]
pub struct PrefixTable(Interner<u64>);

/// Pack a prefix into one u64 word (`network << 8 | len`) — a single
/// hash word, and a lossless identity (unlike a dense id, it needs no
/// table to resolve). The inference hot loop keys its sparse per-member
/// edges on this directly; [`PrefixTable`] hands out dense
/// [`PrefixId`]s where a flat index is worth the table.
#[inline]
pub fn pack_prefix(prefix: Prefix) -> u64 {
    (u64::from(prefix.network_u32()) << 8) | u64::from(prefix.len())
}

/// Inverse of [`pack_prefix`].
#[inline]
pub fn unpack_prefix(word: u64) -> Prefix {
    Prefix::from_u32((word >> 8) as u32, (word & 0xFF) as u8)
        .expect("packed prefixes round-trip (len ≤ 32)")
}

impl PrefixTable {
    /// Intern a prefix.
    #[inline]
    pub fn intern(&mut self, prefix: Prefix) -> PrefixId {
        PrefixId(self.0.intern(pack_prefix(prefix)))
    }

    /// Look up an already-interned prefix.
    #[inline]
    pub fn get(&self, prefix: Prefix) -> Option<PrefixId> {
        self.0.get(pack_prefix(prefix)).map(PrefixId)
    }

    /// The prefix behind an id.
    #[inline]
    pub fn resolve(&self, id: PrefixId) -> Prefix {
        unpack_prefix(self.0.resolve(id.0))
    }

    /// Distinct prefixes interned.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if nothing was interned yet.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// Symbol table for `(IxpId, Asn)` → [`MemberId`] — the key of the
/// link inferencer's reach table. Pairs pack into one u64 word
/// (`ixp << 32 | asn`) so the per-observation probe hashes a single
/// word instead of a two-field tuple.
#[derive(Debug, Clone, Default)]
pub struct MemberTable(Interner<u64>);

#[inline]
fn pack_member(ixp: IxpId, asn: Asn) -> u64 {
    (u64::from(ixp.0) << 32) | u64::from(asn.0)
}

#[inline]
fn unpack_member(word: u64) -> (IxpId, Asn) {
    (IxpId((word >> 32) as u16), Asn(word as u32))
}

impl MemberTable {
    /// Intern a membership pair.
    #[inline]
    pub fn intern(&mut self, ixp: IxpId, asn: Asn) -> MemberId {
        MemberId(self.0.intern(pack_member(ixp, asn)))
    }

    /// Look up an already-interned pair.
    #[inline]
    pub fn get(&self, ixp: IxpId, asn: Asn) -> Option<MemberId> {
        self.0.get(pack_member(ixp, asn)).map(MemberId)
    }

    /// The pair behind an id.
    #[inline]
    pub fn resolve(&self, id: MemberId) -> (IxpId, Asn) {
        unpack_member(self.0.resolve(id.0))
    }

    /// Distinct pairs interned.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if nothing was interned yet.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_and_first_seen_ordered() {
        let mut t = AsnTable::default();
        let a = t.intern(Asn(6695));
        let b = t.intern(Asn(3356));
        let a2 = t.intern(Asn(6695));
        assert_eq!(a, AsnId(0));
        assert_eq!(b, AsnId(1));
        assert_eq!(a, a2, "re-interning returns the same id");
        assert_eq!(t.len(), 2);
        assert_eq!(t.resolve(a), Asn(6695));
        assert_eq!(t.get(Asn(3356)), Some(b));
        assert_eq!(t.get(Asn(1)), None);
        assert!(!t.is_empty());
    }

    #[test]
    fn member_pairs_do_not_collide_across_ixps() {
        let mut t = MemberTable::default();
        let a = t.intern(IxpId(0), Asn(8359));
        let b = t.intern(IxpId(1), Asn(8359));
        assert_ne!(a, b, "same ASN at two IXPs is two members");
        assert_eq!(t.resolve(a), (IxpId(0), Asn(8359)));
        assert_eq!(t.resolve(b), (IxpId(1), Asn(8359)));
        assert_eq!(t.len(), 2);
    }

    /// The satellite contract: prefixes round-trip through interning at
    /// the `/0` and `/32` extremes and along a full covers↔parent
    /// chain, with the chain's cover relations intact after resolve.
    #[test]
    fn prefix_interning_roundtrips_parent_chains() {
        let mut t = PrefixTable::default();
        let host: Prefix = "203.0.113.37/32".parse().unwrap();
        let all: Prefix = "0.0.0.0/0".parse().unwrap();

        // Intern the entire /32 → /0 parent chain (33 prefixes).
        let mut chain = vec![host];
        while let Some(p) = chain.last().unwrap().parent() {
            chain.push(p);
        }
        assert_eq!(chain.len(), 33);
        assert_eq!(*chain.last().unwrap(), all);
        let ids: Vec<PrefixId> = chain.iter().map(|&p| t.intern(p)).collect();
        assert_eq!(t.len(), 33, "every chain member is distinct");

        // Resolve is the exact inverse, and the cover relations the
        // serving trie depends on survive the round-trip.
        for (i, (&p, &id)) in chain.iter().zip(&ids).enumerate() {
            let back = t.resolve(id);
            assert_eq!(back, p, "chain[{i}]");
            assert!(back.covers(&host));
            assert!(all.covers(&back));
            if i > 0 {
                assert_eq!(chain[i - 1].parent(), Some(back), "parent step {i}");
                assert!(!chain[i - 1].covers(&back), "child never covers parent");
            }
        }
        // Re-interning the canonical re-parse of each prefix hits the
        // same id (no duplicate identities via text round-trips).
        for (&p, &id) in chain.iter().zip(&ids) {
            let reparsed: Prefix = p.to_string().parse().unwrap();
            assert_eq!(t.intern(reparsed), id);
        }
        assert_eq!(t.len(), 33);
    }

    #[test]
    fn sibling_prefixes_get_distinct_ids() {
        let mut t = PrefixTable::default();
        let left: Prefix = "198.51.100.192/28".parse().unwrap();
        let right: Prefix = "198.51.100.208/28".parse().unwrap();
        let l = t.intern(left);
        let r = t.intern(right);
        assert_ne!(l, r);
        // Same network address at different lengths is distinct too.
        let covering: Prefix = "198.51.100.192/27".parse().unwrap();
        assert_ne!(t.intern(covering), l);
        assert_eq!(t.resolve(l), left);
        assert_eq!(t.resolve(r), right);
    }

    #[test]
    fn generic_interner_values_in_id_order() {
        let mut t: Interner<u64> = Interner::default();
        for v in [9u64, 3, 9, 7] {
            t.intern(v);
        }
        assert_eq!(t.values(), &[9, 3, 7]);
        assert_eq!(t.get(7), Some(2));
    }
}
