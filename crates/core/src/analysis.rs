//! The evaluation analyses (§5.2–§5.7).
//!
//! One function per figure/table of the paper's results section; each
//! returns a plain-data report the experiment binaries render and
//! `EXPERIMENTS.md` compares against the published values.

use std::collections::{BTreeMap, BTreeSet};

use mlpeer_bgp::Asn;
use mlpeer_data::collector::PassiveDataset;
use mlpeer_data::peeringdb::PeeringDb;
use mlpeer_data::traceroute::TracerouteDataset;
use mlpeer_data::Sim;
use mlpeer_ixp::ixp::IxpId;
use mlpeer_ixp::policy::ExportPolicy;
use mlpeer_ixp::{Ecosystem, PeeringPolicy};
use mlpeer_topo::cone::ConeIndex;
use mlpeer_topo::graph::GeoScope;
use mlpeer_topo::infer::InferredRelationships;
use mlpeer_topo::relationship::Relationship;

use crate::infer::MlpLinkSet;

// ---------------------------------------------------------------------
// Fig. 6 — visibility comparison.
// ---------------------------------------------------------------------

/// Fig. 6 and the §5 headline numbers.
#[derive(Debug, Clone, Default)]
pub struct VisibilityReport {
    /// All AS links visible in public BGP (collector paths).
    pub public_links: BTreeSet<(Asn, Asn)>,
    /// The subset of public links classified p2p by relationship
    /// inference.
    pub public_p2p: BTreeSet<(Asn, Asn)>,
    /// MLP links inferred by our method.
    pub mlp_links: BTreeSet<(Asn, Asn)>,
    /// MLP ∩ public p2p (the 24,511 / 11.9 % overlap).
    pub overlap_public: usize,
    /// MLP ∩ traceroute links (the 3,927 overlap).
    pub overlap_traceroute: usize,
    /// Per RS member: (mlp peer count, public-BGP p2p count, traceroute
    /// link count), sorted descending by MLP count — Fig. 6's series.
    pub per_member: Vec<(Asn, usize, usize, usize)>,
}

impl VisibilityReport {
    /// Fraction of MLP links absent from public BGP ("88 % of which are
    /// not visible in publicly available BGP AS paths").
    pub fn invisible_frac(&self) -> f64 {
        if self.mlp_links.is_empty() {
            return 0.0;
        }
        1.0 - self.overlap_public as f64 / self.mlp_links.len() as f64
    }

    /// Peering-link gain over the public view ("209 % more peering
    /// links").
    pub fn peering_gain(&self) -> f64 {
        if self.public_p2p.is_empty() {
            return 0.0;
        }
        self.mlp_links.len() as f64 / self.public_p2p.len() as f64 - 1.0
    }
}

/// Extract every AS link from archived collector paths.
pub fn public_links_from(passive: &PassiveDataset) -> BTreeSet<(Asn, Asn)> {
    let mut links = BTreeSet::new();
    for (_, archive) in &passive.collectors {
        for e in &archive.rib {
            for (a, b) in e.attrs.as_path.links() {
                if a != b {
                    links.insert(if a < b { (a, b) } else { (b, a) });
                }
            }
        }
    }
    links
}

/// Build the Fig. 6 visibility comparison.
pub fn visibility(
    eco: &Ecosystem,
    links: &MlpLinkSet,
    passive: &PassiveDataset,
    traceroute: &TracerouteDataset,
    rels: &InferredRelationships,
) -> VisibilityReport {
    let public_links = public_links_from(passive);
    let public_p2p: BTreeSet<(Asn, Asn)> = public_links
        .iter()
        .filter(|(a, b)| rels.rel(*a, *b) == Some(Relationship::P2p))
        .copied()
        .collect();
    let mlp_links = links.unique_links();
    let overlap_public = mlp_links.intersection(&public_p2p).count();
    let overlap_traceroute = mlp_links
        .iter()
        .filter(|(a, b)| traceroute.contains(*a, *b))
        .count();

    // Per-member series.
    let mut per_member: Vec<(Asn, usize, usize, usize)> = Vec::new();
    let members: BTreeSet<Asn> = eco.all_rs_member_asns();
    for &m in &members {
        let mlp = mlp_links.iter().filter(|(a, b)| *a == m || *b == m).count();
        if mlp == 0 {
            continue;
        }
        let pasv = public_p2p
            .iter()
            .filter(|(a, b)| *a == m || *b == m)
            .count();
        let act = traceroute
            .links
            .iter()
            .filter(|(a, b)| *a == m || *b == m)
            .count();
        per_member.push((m, mlp, pasv, act));
    }
    per_member.sort_unstable_by_key(|&(a, mlp, _, _)| (std::cmp::Reverse(mlp), a));

    VisibilityReport {
        public_links,
        public_p2p,
        mlp_links,
        overlap_public,
        overlap_traceroute,
        per_member,
    }
}

// ---------------------------------------------------------------------
// Fig. 7 — endpoint customer degrees.
// ---------------------------------------------------------------------

/// Fig. 7 plus the stub statistics of §5.
#[derive(Debug, Clone, Default)]
pub struct DegreeReport {
    /// Per link: (smaller endpoint customer degree, larger).
    pub pairs: Vec<(usize, usize)>,
    /// Fraction of links between two stubs (12.4 %).
    pub stub_stub_frac: f64,
    /// Fraction involving at least one stub (55.6 %).
    pub involves_stub_frac: f64,
    /// Fraction where both endpoints have ≤ 10 customers — §5 counts a
    /// link when it involves ASes "with at most 10 customers" (58.1 %).
    pub leq10_frac: f64,
    /// Fraction of the stub–stub links that appear in public BGP
    /// (1.4 %).
    pub stub_stub_public_frac: f64,
}

/// Build the Fig. 7 degree analysis.
pub fn degrees(
    eco: &Ecosystem,
    links: &MlpLinkSet,
    public_links: &BTreeSet<(Asn, Asn)>,
) -> DegreeReport {
    let unique = links.unique_links();
    let mut pairs = Vec::with_capacity(unique.len());
    let mut stub_stub = 0usize;
    let mut with_stub = 0usize;
    let mut leq10 = 0usize;
    let mut stub_stub_public = 0usize;
    for &(a, b) in &unique {
        let da = eco.internet.graph.customer_degree(a);
        let db = eco.internet.graph.customer_degree(b);
        let (lo, hi) = (da.min(db), da.max(db));
        pairs.push((lo, hi));
        if hi == 0 {
            stub_stub += 1;
            if public_links.contains(&(a, b)) {
                stub_stub_public += 1;
            }
        }
        if lo == 0 {
            with_stub += 1;
        }
        if lo <= 10 {
            leq10 += 1;
        }
    }
    let n = unique.len().max(1) as f64;
    DegreeReport {
        pairs,
        stub_stub_frac: stub_stub as f64 / n,
        involves_stub_frac: with_stub as f64 / n,
        leq10_frac: leq10 as f64 / n,
        stub_stub_public_frac: stub_stub_public as f64 / stub_stub.max(1) as f64,
    }
}

// ---------------------------------------------------------------------
// Figs. 9 & 10 — policy vs participation.
// ---------------------------------------------------------------------

/// Figs. 9 and 10.
#[derive(Debug, Clone, Default)]
pub struct PolicyReport {
    /// Members with a reported policy (904 of 1,667 in the paper).
    pub with_policy: usize,
    /// Total IXP members considered.
    pub total_members: usize,
    /// Reported-policy mix (open, selective, restrictive).
    pub mix: (usize, usize, usize),
    /// Per policy: (members, members using ≥ 1 RS) — Fig. 9's bottom
    /// line (92 % / 75 % / 43 %).
    pub rs_usage: BTreeMap<PeeringPolicy, (usize, usize)>,
    /// Fig. 10 matrix: `matrix[presences][participations]` → count
    /// (indices clamped at 7).
    pub matrix: Vec<Vec<usize>>,
}

impl PolicyReport {
    /// Fraction of ASes at a single IXP using its RS (55.8 %).
    pub fn single_ixp_with_rs_frac(&self) -> f64 {
        let total: usize = self.matrix.iter().flatten().sum();
        if total == 0 {
            return 0.0;
        }
        self.matrix[1][1] as f64 / total as f64
    }

    /// Fraction using no RS at all (13.4 %).
    pub fn no_rs_frac(&self) -> f64 {
        let total: usize = self.matrix.iter().flatten().sum();
        if total == 0 {
            return 0.0;
        }
        let none: usize = self.matrix.iter().map(|row| row[0]).sum();
        none as f64 / total as f64
    }
}

/// Build the Fig. 9/10 participation analysis.
pub fn policy_participation(eco: &Ecosystem, pdb: &PeeringDb) -> PolicyReport {
    let members = eco.all_member_asns();
    let mut report = PolicyReport {
        total_members: members.len(),
        matrix: vec![vec![0usize; 8]; 8],
        ..Default::default()
    };
    for &asn in &members {
        let presences = eco.ixps_of(asn).len().min(7);
        let participations = eco.rs_participations_of(asn).min(7);
        report.matrix[presences][participations] += 1;
        let Some(policy) = pdb.get(asn).and_then(|r| r.policy) else {
            continue;
        };
        report.with_policy += 1;
        match policy {
            PeeringPolicy::Open => report.mix.0 += 1,
            PeeringPolicy::Selective => report.mix.1 += 1,
            PeeringPolicy::Restrictive => report.mix.2 += 1,
        }
        let slot = report.rs_usage.entry(policy).or_insert((0, 0));
        slot.0 += 1;
        if participations >= 1 {
            slot.1 += 1;
        }
    }
    report
}

// ---------------------------------------------------------------------
// Fig. 11 — export-filter bimodality.
// ---------------------------------------------------------------------

/// Fig. 11: allowed fraction per (reported policy).
#[derive(Debug, Clone, Default)]
pub struct FilterReport {
    /// Per reported policy: the allowed fractions of its RS members.
    pub fractions: BTreeMap<PeeringPolicy, Vec<f64>>,
}

impl FilterReport {
    /// Mean allowed fraction per policy (96.7 / 80.4 / 69.2 in the
    /// paper).
    pub fn mean(&self, p: PeeringPolicy) -> f64 {
        match self.fractions.get(&p) {
            Some(v) if !v.is_empty() => v.iter().sum::<f64>() / v.len() as f64,
            _ => 0.0,
        }
    }

    /// Bimodality measure: fraction of members allowing > 90 % or
    /// < 10 % of candidates ("almost all RS members block fewer than
    /// 10 % or allow fewer than 10 %").
    pub fn bimodal_frac(&self) -> f64 {
        let all: Vec<f64> = self.fractions.values().flatten().copied().collect();
        if all.is_empty() {
            return 0.0;
        }
        let extreme = all.iter().filter(|&&f| !(0.1..=0.9).contains(&f)).count();
        extreme as f64 / all.len() as f64
    }
}

/// Build the Fig. 11 filter analysis from the *inferred* policies.
pub fn filter_patterns(
    links: &MlpLinkSet,
    conn: &crate::connectivity::ConnectivityData,
    pdb: &PeeringDb,
) -> FilterReport {
    let mut report = FilterReport::default();
    for ((ixp, member), policy) in &links.policies {
        let Some(reported) = pdb.get(*member).and_then(|r| r.policy) else {
            continue;
        };
        let others: BTreeSet<Asn> = conn
            .rs_members(*ixp)
            .into_iter()
            .filter(|&m| m != *member)
            .collect();
        let frac = policy.allowed_fraction(&others);
        report.fractions.entry(reported).or_default().push(frac);
    }
    report
}

// ---------------------------------------------------------------------
// Fig. 12 — peering density.
// ---------------------------------------------------------------------

/// Fig. 12: per-member peering density per IXP.
#[derive(Debug, Clone, Default)]
pub struct DensityReport {
    /// Per IXP: every member's fraction of possible RS links realized.
    pub per_ixp: BTreeMap<IxpId, Vec<f64>>,
}

impl DensityReport {
    /// Mean density at an IXP (0.79–0.95 in Fig. 12).
    pub fn mean(&self, ixp: IxpId) -> f64 {
        match self.per_ixp.get(&ixp) {
            Some(v) if !v.is_empty() => v.iter().sum::<f64>() / v.len() as f64,
            _ => 0.0,
        }
    }
}

/// Build Fig. 12 for the IXPs with full connectivity data (RS LGs).
pub fn density(eco: &Ecosystem, links: &MlpLinkSet) -> DensityReport {
    let mut report = DensityReport::default();
    for ixp in &eco.ixps {
        if !ixp.has_lg {
            continue;
        }
        let members = match links.covered.get(&ixp.id) {
            Some(m) if m.len() > 1 => m,
            _ => continue,
        };
        let set = links.links_at(ixp.id);
        let possible = members.len() - 1;
        let mut fracs = Vec::with_capacity(members.len());
        for &m in members {
            let have = set.iter().filter(|(a, b)| *a == m || *b == m).count();
            fracs.push(have as f64 / possible as f64);
        }
        report.per_ixp.insert(ixp.id, fracs);
    }
    report
}

// ---------------------------------------------------------------------
// Fig. 13 / §5.5 — repellers.
// ---------------------------------------------------------------------

/// Fig. 13 and the EXCLUDE-application statistics.
#[derive(Debug, Clone, Default)]
pub struct RepellerReport {
    /// Times each AS is blocked, with its PeeringDB scope.
    pub blocked: BTreeMap<Asn, (usize, GeoScope)>,
    /// Total EXCLUDE applications (1,795 in the paper).
    pub exclude_applications: usize,
    /// EXCLUDEs where the blocker is a provider blocking a *direct*
    /// co-located customer (12 %).
    pub provider_blocks_customer: usize,
    /// EXCLUDEs blocking an AS inside the blocker's customer cone
    /// (77 %).
    pub in_customer_cone: usize,
    /// Distinct repelled ASes (570).
    pub distinct_repelled: usize,
    /// `(blocks, distinct blockers)` of the most-blocked AS (Google:
    /// 82 by 75).
    pub top_repelled: Option<(Asn, usize, usize)>,
}

/// Build the §5.5 repeller analysis from the inferred export policies.
pub fn repellers(eco: &Ecosystem, links: &MlpLinkSet, pdb: &PeeringDb) -> RepellerReport {
    let mut report = RepellerReport::default();
    let mut blockers_of: BTreeMap<Asn, BTreeSet<Asn>> = BTreeMap::new();
    // Cones for every blocker that excludes somebody.
    let excluders: BTreeSet<Asn> = links
        .policies
        .iter()
        .filter(|(_, p)| matches!(p, ExportPolicy::AllExcept(_)))
        .map(|((_, m), _)| *m)
        .collect();
    let cones = ConeIndex::build(&eco.internet.graph, excluders.iter().copied());
    for ((_ixp, member), policy) in &links.policies {
        for target in policy.excluded_iter() {
            report.exclude_applications += 1;
            let scope = pdb
                .get(target)
                .map(|r| r.scope)
                .unwrap_or(GeoScope::NotReported);
            let slot = report.blocked.entry(target).or_insert((0, scope));
            slot.0 += 1;
            blockers_of.entry(target).or_default().insert(*member);
            if eco.internet.graph.relationship(*member, target) == Some(Relationship::P2c) {
                report.provider_blocks_customer += 1;
            }
            if cones.contains(*member, target) && *member != target {
                report.in_customer_cone += 1;
            }
        }
    }
    report.distinct_repelled = report.blocked.len();
    report.top_repelled = report
        .blocked
        .iter()
        .max_by_key(|(a, (n, _))| (*n, std::cmp::Reverse(a.value())))
        .map(|(a, (n, _))| (*a, *n, blockers_of.get(a).map(BTreeSet::len).unwrap_or(0)));
    report
}

// ---------------------------------------------------------------------
// §5.6 — hybrid relationships.
// ---------------------------------------------------------------------

/// §5.6: MLP links that relationship inference calls p2c.
#[derive(Debug, Clone, Default)]
pub struct HybridReport {
    /// MLP links visible in public BGP that the relationship algorithm
    /// infers as p2c (1,230 in the paper).
    pub p2c_candidates: Vec<(Asn, Asn)>,
    /// Candidates whose provider documents relationship-tagging
    /// communities, allowing location-specific verification (202 of 440
    /// examined in the paper).
    pub verified: Vec<(Asn, Asn)>,
}

/// Build the hybrid-relationship study.
pub fn hybrid(
    sim: &Sim,
    links: &MlpLinkSet,
    public_links: &BTreeSet<(Asn, Asn)>,
    rels: &InferredRelationships,
) -> HybridReport {
    let mut report = HybridReport::default();
    for &(a, b) in &links.unique_links() {
        if !public_links.contains(&(a, b)) {
            continue;
        }
        match rels.rel(a, b) {
            Some(Relationship::P2c) => {
                report.p2c_candidates.push((a, b));
                if sim.taggers().contains(&a) {
                    report.verified.push((a, b));
                }
            }
            Some(Relationship::C2p) => {
                report.p2c_candidates.push((a, b));
                if sim.taggers().contains(&b) {
                    report.verified.push((a, b));
                }
            }
            _ => {}
        }
    }
    report
}

// ---------------------------------------------------------------------
// §5.7 — the global estimate.
// ---------------------------------------------------------------------

/// One IXP row of the §5.7 estimation table.
#[derive(Debug, Clone)]
pub struct IxpStatRow {
    /// Name.
    pub name: String,
    /// Continent bucket.
    pub region: EstimateRegion,
    /// Member count.
    pub members: usize,
    /// Flat-fee pricing (vs usage-based)?
    pub flat_fee: bool,
    /// Route servers available?
    pub has_rs: bool,
}

/// Continent buckets of §5.7.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstimateRegion {
    /// Europe.
    Europe,
    /// North America (for-profit model, lower density).
    NorthAmerica,
    /// Asia / Pacific.
    AsiaPacific,
    /// Latin America.
    LatinAmerica,
    /// Africa.
    Africa,
}

/// §5.7's density assumption for one IXP.
pub fn assumed_density(row: &IxpStatRow, conservative: bool) -> f64 {
    let d: f64 = match (row.region, row.has_rs, row.flat_fee) {
        (EstimateRegion::NorthAmerica, _, _) => 0.4,
        (_, true, true) => 0.7,
        (_, true, false) => 0.6,
        (_, false, _) => 0.5,
    };
    if conservative {
        d.min(0.6)
    } else {
        d
    }
}

/// The §5.7 estimate.
#[derive(Debug, Clone, Default)]
pub struct EstimateReport {
    /// Estimated European IXP peerings (558,291 in the paper).
    pub europe_total: f64,
    /// Estimated unique European AS pairs under maximal overlap
    /// (399,732).
    pub europe_unique: f64,
    /// Estimated global IXP peerings (686,104).
    pub global_total: f64,
    /// Estimated unique global AS pairs (510,870).
    pub global_unique: f64,
    /// Conservative global total with densities capped at 60 %
    /// (596,011).
    pub conservative_total: f64,
    /// Conservative unique (422,423).
    pub conservative_unique: f64,
}

/// The 61-IXP table (37 EU / 14 NA / 11 AP / 1 LA / 1 AF), calibrated
/// from 2013 peering-registry scale. Exact member counts are stand-ins;
/// the density model and structure are the paper's.
pub fn global_ixp_table() -> Vec<IxpStatRow> {
    let mut rows = Vec::new();
    let eu13: [(&str, usize, bool); 13] = [
        ("AMS-IX", 620, true),
        ("DE-CIX", 500, true),
        ("LINX", 470, true),
        ("MSK-IX", 380, false),
        ("PLIX", 230, true),
        ("France-IX", 200, true),
        ("LONAP", 125, true),
        ("ECIX", 105, true),
        ("SPB-IX", 90, false),
        ("DTEL-IX", 75, false),
        ("TOP-IX", 72, true),
        ("STHIX", 70, true),
        ("BIX.BG", 55, true),
    ];
    for (name, members, flat) in eu13 {
        rows.push(IxpStatRow {
            name: name.into(),
            region: EstimateRegion::Europe,
            members,
            flat_fee: flat,
            has_rs: true,
        });
    }
    // 24 further European IXPs with ≥ 50 members.
    let eu_other: [(usize, f64); 24] = [
        (320, 0.7),
        (280, 0.6),
        (230, 0.7),
        (200, 0.5),
        (170, 0.7),
        (160, 0.6),
        (150, 0.7),
        (140, 0.7),
        (130, 0.5),
        (120, 0.6),
        (110, 0.7),
        (105, 0.7),
        (100, 0.6),
        (95, 0.7),
        (90, 0.5),
        (85, 0.7),
        (80, 0.6),
        (75, 0.7),
        (70, 0.7),
        (65, 0.5),
        (60, 0.6),
        (58, 0.7),
        (55, 0.7),
        (52, 0.6),
    ];
    for (i, (members, d)) in eu_other.iter().enumerate() {
        // d encodes the pricing/RS mix: 0.7 = flat+RS, 0.6 = usage+RS,
        // 0.5 = no RS.
        let (flat, rs) = match *d {
            x if x >= 0.7 => (true, true),
            x if x >= 0.6 => (false, true),
            _ => (true, false),
        };
        rows.push(IxpStatRow {
            name: format!("EU-IX-{}", i + 14),
            region: EstimateRegion::Europe,
            members: *members,
            flat_fee: flat,
            has_rs: rs,
        });
    }
    for (i, members) in [
        380, 280, 230, 190, 170, 140, 120, 110, 100, 95, 85, 75, 65, 55,
    ]
    .into_iter()
    .enumerate()
    {
        rows.push(IxpStatRow {
            name: format!("NA-IX-{}", i + 1),
            region: EstimateRegion::NorthAmerica,
            members,
            flat_fee: false,
            has_rs: i % 3 == 0,
        });
    }
    for (i, members) in [260, 190, 170, 140, 120, 110, 95, 85, 75, 65, 55]
        .into_iter()
        .enumerate()
    {
        rows.push(IxpStatRow {
            name: format!("AP-IX-{}", i + 1),
            region: EstimateRegion::AsiaPacific,
            members,
            flat_fee: false,
            has_rs: true,
        });
    }
    rows.push(IxpStatRow {
        name: "LA-IX-1".into(),
        region: EstimateRegion::LatinAmerica,
        members: 75,
        flat_fee: true,
        has_rs: true,
    });
    rows.push(IxpStatRow {
        name: "AF-IX-1".into(),
        region: EstimateRegion::Africa,
        members: 55,
        flat_fee: true,
        has_rs: false,
    });
    rows
}

/// Run the §5.7 estimation. `overlap` is the assumed fraction of
/// peerings duplicated across co-located IXPs when reducing totals to
/// unique AS pairs (the paper's "highest possible link overlap"; its
/// published ratios imply ≈ 0.28 in Europe and ≈ 0.25 globally).
pub fn estimate(rows: &[IxpStatRow], overlap: f64) -> EstimateReport {
    let pairs = |n: usize| (n * n.saturating_sub(1) / 2) as f64;
    let mut report = EstimateReport::default();
    for row in rows {
        let links = pairs(row.members) * assumed_density(row, false);
        let cons = pairs(row.members) * assumed_density(row, true);
        report.global_total += links;
        report.conservative_total += cons;
        if row.region == EstimateRegion::Europe {
            report.europe_total += links;
        }
    }
    report.europe_unique = report.europe_total * (1.0 - overlap);
    report.global_unique = report.global_total * (1.0 - overlap * 0.9);
    report.conservative_unique = report.conservative_total * (1.0 - overlap * 0.9);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_assumptions_match_section57() {
        let mk = |region, has_rs, flat_fee| IxpStatRow {
            name: "x".into(),
            region,
            members: 100,
            flat_fee,
            has_rs,
        };
        assert_eq!(
            assumed_density(&mk(EstimateRegion::Europe, true, true), false),
            0.7
        );
        assert_eq!(
            assumed_density(&mk(EstimateRegion::Europe, true, false), false),
            0.6
        );
        assert_eq!(
            assumed_density(&mk(EstimateRegion::Europe, false, true), false),
            0.5
        );
        assert_eq!(
            assumed_density(&mk(EstimateRegion::NorthAmerica, true, true), false),
            0.4
        );
        // Conservative caps at 0.6.
        assert_eq!(
            assumed_density(&mk(EstimateRegion::Europe, true, true), true),
            0.6
        );
        assert_eq!(
            assumed_density(&mk(EstimateRegion::NorthAmerica, true, true), true),
            0.4
        );
    }

    #[test]
    fn global_table_has_section57_structure() {
        // The paper says "61 IXPs" but its own breakdown (37 EU + 14 NA
        // + 11 AP + 1 LA + 1 AF) sums to 64; we follow the breakdown.
        let rows = global_ixp_table();
        assert_eq!(rows.len(), 64, "37 EU, 14 NA, 11 AP, 1 LA, 1 AF");
        assert_eq!(
            rows.iter()
                .filter(|r| r.region == EstimateRegion::Europe)
                .count(),
            37
        );
        assert_eq!(
            rows.iter()
                .filter(|r| r.region == EstimateRegion::NorthAmerica)
                .count(),
            14
        );
        assert!(
            rows.iter().all(|r| r.members >= 50),
            "≥ 50 members everywhere"
        );
    }

    #[test]
    fn estimate_lands_in_paper_ballpark() {
        let report = estimate(&global_ixp_table(), 0.28);
        // Paper: EU 558,291; global 686,104; conservative 596,011.
        assert!(
            (450_000.0..650_000.0).contains(&report.europe_total),
            "EU total {:.0}",
            report.europe_total
        );
        assert!(
            (600_000.0..800_000.0).contains(&report.global_total),
            "global total {:.0}",
            report.global_total
        );
        assert!(report.conservative_total < report.global_total);
        assert!(report.europe_unique < report.europe_total);
        assert!(report.global_unique < report.global_total);
        // Unique ratio ≈ the paper's 0.716 / 0.745.
        let eu_ratio = report.europe_unique / report.europe_total;
        assert!(
            (0.65..0.8).contains(&eu_ratio),
            "EU unique ratio {eu_ratio:.3}"
        );
    }
}
