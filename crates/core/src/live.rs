//! Live mode: incremental inference over a BGP update stream, with
//! retraction.
//!
//! The batch pipeline (§4.1) folds a finished harvest; live mode folds
//! the route server's *session traffic* as it happens. A
//! [`LiveEvent`] — member join/leave, per-prefix announce with its
//! community-decoded filter actions, withdraw — is applied by
//! [`LiveInferencer::apply`], which updates `N_{a,p}`, the per-member
//! reach summaries, and the reciprocal link set *for the touched member
//! only*, returning the [`LinkDelta`] (links appearing/disappearing)
//! instead of recomputing the world.
//!
//! **The correctness anchor** (property-tested in this module and in
//! `tests/` over random churn schedules): after *any* event sequence,
//! [`LiveInferencer::current`] is byte-identical — same deterministic
//! JSON — to [`crate::infer::infer_links`] over [`full_harvest`] of the
//! final ecosystem state. Retraction exactly inverts observation:
//! a withdraw (or leave) leaves no residue that a from-scratch harvest
//! would not also see.
//!
//! Why retraction is possible here when [`crate::infer::LinkInferencer`]
//! cannot: the batch inferencer folds an *unordered multiset* of
//! observations (any vantage point may re-observe a route), so its
//! per-prefix state is a monotone union that cannot forget. The live
//! stream is a *session*: BGP's implicit-withdraw rule means the latest
//! announcement for `(member, prefix)` replaces everything before it,
//! so per-prefix state is "latest policy", and withdraw simply deletes
//! it.

use std::collections::{BTreeMap, BTreeSet};

use mlpeer_bgp::stream::TimedMessage;
use mlpeer_bgp::update::BgpMessage;
use mlpeer_bgp::{Asn, Prefix};
use mlpeer_ixp::ixp::IxpId;
use mlpeer_ixp::policy::ExportPolicy;
use mlpeer_ixp::route_server::RouteServer;
use mlpeer_ixp::scheme::{CommunityScheme, RsAction};
use mlpeer_ixp::Ecosystem;

use crate::connectivity::{ConnSource, ConnectivityData};
use crate::hash::FxHashMap;
use crate::infer::{MlpLinkSet, Observation, ObservationSource};
use crate::sink::ObservationSink;

/// One decoded event on a route server's session stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LiveEvent {
    /// A member opened its RS session (no reachability data yet).
    Join {
        /// The IXP whose route server the session is with.
        ixp: IxpId,
        /// The member.
        member: Asn,
    },
    /// A member closed its RS session; all its state retracts.
    Leave {
        /// The IXP.
        ixp: IxpId,
        /// The member.
        member: Asn,
    },
    /// A member announced `prefix` with these decoded filter actions
    /// (BGP implicit withdraw: replaces any earlier announcement of the
    /// same prefix).
    Announce {
        /// The IXP.
        ixp: IxpId,
        /// The RS setter.
        member: Asn,
        /// The announced prefix.
        prefix: Prefix,
        /// Decoded RS actions (empty = default ALL).
        actions: Vec<RsAction>,
    },
    /// A member withdrew `prefix`; its per-prefix state retracts.
    Withdraw {
        /// The IXP.
        ixp: IxpId,
        /// The member.
        member: Asn,
        /// The withdrawn prefix.
        prefix: Prefix,
    },
}

/// Decode one session message from `ixp`'s route server into live
/// events, using the IXP's documented community scheme — the same
/// decoding step the passive pipeline applies to archived routes
/// (§4.2), minus the IXP-identification problem (a session stream knows
/// its IXP).
pub fn decode_message(ixp: IxpId, scheme: &CommunityScheme, m: &TimedMessage) -> Vec<LiveEvent> {
    match &m.msg {
        BgpMessage::Open { asn, .. } => vec![LiveEvent::Join { ixp, member: *asn }],
        BgpMessage::Notification { .. } => vec![LiveEvent::Leave {
            ixp,
            member: m.from,
        }],
        BgpMessage::Keepalive => Vec::new(),
        BgpMessage::Update(u) => {
            let mut out: Vec<LiveEvent> = u
                .withdrawn
                .iter()
                .map(|p| LiveEvent::Withdraw {
                    ixp,
                    member: m.from,
                    prefix: *p,
                })
                .collect();
            if let Some(attrs) = &u.attrs {
                let actions: Vec<RsAction> = attrs
                    .communities
                    .iter()
                    .filter_map(|c| scheme.decode(c))
                    .collect();
                for p in &u.nlri {
                    out.push(LiveEvent::Announce {
                        ixp,
                        member: m.from,
                        prefix: *p,
                        actions: actions.clone(),
                    });
                }
            }
            out
        }
    }
}

/// The link-level difference one event (or one batch) produced.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LinkDelta {
    /// Links that appeared, as `(ixp, a, b)` with `a < b`.
    pub added: Vec<(IxpId, Asn, Asn)>,
    /// Links that disappeared.
    pub removed: Vec<(IxpId, Asn, Asn)>,
}

impl LinkDelta {
    /// No change at all?
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }

    /// The link-level diff turning `old` into `new`: what a restart
    /// bridge must publish so `/v1/changes` composes across the last
    /// persisted link set and a freshly bootstrapped one.
    pub fn between(old: &MlpLinkSet, new: &MlpLinkSet) -> LinkDelta {
        let empty = BTreeSet::new();
        let ixps: BTreeSet<IxpId> = old
            .per_ixp
            .keys()
            .chain(new.per_ixp.keys())
            .copied()
            .collect();
        let mut delta = LinkDelta::default();
        for ixp in ixps {
            let o = old.per_ixp.get(&ixp).unwrap_or(&empty);
            let n = new.per_ixp.get(&ixp).unwrap_or(&empty);
            for &(a, b) in n.difference(o) {
                delta.added.push((ixp, a, b));
            }
            for &(a, b) in o.difference(n) {
                delta.removed.push((ixp, a, b));
            }
        }
        delta
    }

    /// Fold another delta in (sequential composition). An add then
    /// remove of the same link cancels out, and vice versa.
    pub fn merge(&mut self, other: LinkDelta) {
        for l in other.added {
            if let Some(i) = self.removed.iter().position(|x| *x == l) {
                self.removed.swap_remove(i);
            } else {
                self.added.push(l);
            }
        }
        for l in other.removed {
            if let Some(i) = self.added.iter().position(|x| *x == l) {
                self.added.swap_remove(i);
            } else {
                self.removed.push(l);
            }
        }
    }
}

/// The effective export reach of one member, folded over all its
/// announced prefixes: `N_a` as a *predicate* rather than a
/// materialized set, so membership churn elsewhere never invalidates
/// it. `⋂_p (A_RS − E_p)` stays "everyone except ∪E_p"; one
/// `NONE + INCLUDE` prefix collapses it to an explicit allow set.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Reach {
    /// Allowed unless excluded on some prefix.
    Excl(BTreeSet<Asn>),
    /// Allowed only if included on every include-mode prefix (and never
    /// excluded).
    Incl(BTreeSet<Asn>),
}

impl Reach {
    fn allows(&self, x: Asn) -> bool {
        match self {
            Reach::Excl(e) => !e.contains(&x),
            Reach::Incl(i) => i.contains(&x),
        }
    }

    /// Fold the per-prefix policies into the intersection predicate.
    fn summarize<'a, I: IntoIterator<Item = &'a ExportPolicy>>(policies: I) -> Reach {
        let mut excl: BTreeSet<Asn> = BTreeSet::new();
        let mut incl: Option<BTreeSet<Asn>> = None;
        for p in policies {
            match p {
                ExportPolicy::AllMembers => {}
                ExportPolicy::AllExcept(e) => excl.extend(e.iter().copied()),
                ExportPolicy::OnlyTo(i) => {
                    incl = Some(match incl {
                        None => i.clone(),
                        Some(prev) => prev.intersection(i).copied().collect(),
                    });
                }
                ExportPolicy::Nobody => incl = Some(BTreeSet::new()),
            }
        }
        match incl {
            Some(i) => Reach::Incl(i.difference(&excl).copied().collect()),
            None => Reach::Excl(excl),
        }
    }
}

/// The incremental link inferencer behind live mode.
///
/// Holds the per-session reachability state (latest policy per
/// `(ixp, member, prefix)`), per-member reach summaries, and the
/// *maintained* [`MlpLinkSet`]; [`apply`](LiveInferencer::apply)
/// updates all three per event and reports the [`LinkDelta`].
#[derive(Debug, Clone, Default)]
pub struct LiveInferencer {
    /// Open RS sessions per IXP (the live analog of `A_RS`).
    members: FxHashMap<IxpId, BTreeSet<Asn>>,
    /// Latest effective policy per announced prefix.
    reach: FxHashMap<(IxpId, Asn), BTreeMap<Prefix, ExportPolicy>>,
    /// Cached reach predicate per covered member.
    summaries: FxHashMap<(IxpId, Asn), Reach>,
    /// The maintained link set (always equal to a from-scratch
    /// finalize over the current state).
    links: MlpLinkSet,
    /// Events applied since construction.
    events: u64,
    /// Bumped whenever the *served* state (reach data) actually
    /// mutates — i.e. whenever a fresh snapshot would render
    /// differently. Pure no-ops (re-announces of the same policy,
    /// messages for unknown sessions, membership-only changes) do not
    /// bump it.
    state_version: u64,
}

impl LiveInferencer {
    /// An empty inferencer (no sessions, no links).
    pub fn new() -> Self {
        Self::default()
    }

    /// Bootstrap from an ecosystem's current route-server state — the
    /// live-mode equivalent of the one-shot harvest. Built by folding
    /// [`full_harvest`]'s own output (sessions from its connectivity,
    /// one policy per observation), so the equivalence anchor and the
    /// bootstrap share one encode→decode path by construction; links
    /// are rebuilt once at the end instead of per event.
    pub fn from_ecosystem(eco: &Ecosystem) -> Self {
        let (conn, observations) = full_harvest(eco);
        let mut li = LiveInferencer::new();
        for ixp in conn.ixps() {
            li.members
                .entry(ixp)
                .or_default()
                .extend(conn.rs_members(ixp));
        }
        for obs in observations {
            li.reach
                .entry((obs.ixp, obs.member))
                .or_default()
                .insert(obs.prefix, ExportPolicy::from_actions(obs.actions));
        }
        li.rebuild();
        li
    }

    /// Events applied so far.
    pub fn event_count(&self) -> u64 {
        self.events
    }

    /// Monotone version of the served state: advances exactly when a
    /// snapshot rendered now would differ from one rendered before the
    /// last event (new/changed/withdrawn per-prefix policies) — links
    /// may or may not have moved. The live refresher publishes when
    /// either this advanced or the link delta is non-empty.
    pub fn state_version(&self) -> u64 {
        self.state_version
    }

    /// The maintained link set. Always identical to what a from-scratch
    /// harvest of the current state would infer.
    pub fn current(&self) -> &MlpLinkSet {
        &self.links
    }

    /// Materialize the canonical observation list of the current state
    /// (one observation per `(ixp, member, prefix)`, sorted) — what a
    /// from-scratch harvest would stream, used to build indexed
    /// snapshots over live state.
    pub fn observations(&self) -> Vec<Observation> {
        let mut keys: Vec<&(IxpId, Asn)> = self.reach.keys().collect();
        keys.sort_unstable();
        let mut out = Vec::new();
        for key in keys {
            for (prefix, policy) in &self.reach[key] {
                out.push(Observation {
                    ixp: key.0,
                    member: key.1,
                    prefix: *prefix,
                    actions: canonical_actions(policy),
                    source: ObservationSource::ActiveRsLg,
                });
            }
        }
        out
    }

    /// Apply one event; returns the links that appeared/disappeared.
    pub fn apply(&mut self, event: &LiveEvent) -> LinkDelta {
        self.events += 1;
        match event {
            LiveEvent::Join { ixp, member } => {
                self.members.entry(*ixp).or_default().insert(*member);
                LinkDelta::default()
            }
            LiveEvent::Leave { ixp, member } => {
                let present = self.members.get_mut(ixp).is_some_and(|s| s.remove(member));
                if !present {
                    return LinkDelta::default();
                }
                self.retract_member(*ixp, *member)
            }
            LiveEvent::Announce {
                ixp,
                member,
                prefix,
                actions,
            } => {
                // Announcements from an AS without an open session are
                // dropped, exactly as finalize() drops observations for
                // members outside `A_RS`.
                if !self.members.get(ixp).is_some_and(|s| s.contains(member)) {
                    return LinkDelta::default();
                }
                let policy = ExportPolicy::from_actions(actions.iter().copied());
                let map = self.reach.entry((*ixp, *member)).or_default();
                let newly_covered = map.is_empty();
                if map.get(prefix) == Some(&policy) {
                    return LinkDelta::default(); // re-announce, nothing changed
                }
                map.insert(*prefix, policy);
                self.state_version += 1;
                if newly_covered {
                    self.links.covered.entry(*ixp).or_default().insert(*member);
                    self.links.per_ixp.entry(*ixp).or_default();
                }
                self.refresh_member(*ixp, *member)
            }
            LiveEvent::Withdraw {
                ixp,
                member,
                prefix,
            } => {
                let Some(map) = self.reach.get_mut(&(*ixp, *member)) else {
                    return LinkDelta::default();
                };
                if map.remove(prefix).is_none() {
                    return LinkDelta::default();
                }
                self.state_version += 1;
                if map.is_empty() {
                    self.reach.remove(&(*ixp, *member));
                    self.uncover(*ixp, *member)
                } else {
                    self.refresh_member(*ixp, *member)
                }
            }
        }
    }

    /// Recompute `member`'s summary, default policy, and links after
    /// its per-prefix state changed (it is covered).
    fn refresh_member(&mut self, ixp: IxpId, member: Asn) -> LinkDelta {
        let map = &self.reach[&(ixp, member)];
        let summary = Reach::summarize(map.values());
        let default_policy = map
            .first_key_value()
            .map(|(_, p)| p.clone())
            .expect("covered member announces at least one prefix");
        self.links.policies.insert((ixp, member), default_policy);
        let unchanged = self.summaries.get(&(ixp, member)) == Some(&summary);
        self.summaries.insert((ixp, member), summary);
        if unchanged {
            // Policy shuffle with the same net reach (e.g. a withdraw
            // of a redundant prefix): links cannot have moved.
            return LinkDelta::default();
        }
        self.relink(ixp, member)
    }

    /// Remove a member's session state entirely (leave).
    fn retract_member(&mut self, ixp: IxpId, member: Asn) -> LinkDelta {
        if self.reach.remove(&(ixp, member)).is_some() {
            self.state_version += 1;
        }
        self.uncover(ixp, member)
    }

    /// Drop a member from the covered set (no reachability data left)
    /// and retract its links.
    fn uncover(&mut self, ixp: IxpId, member: Asn) -> LinkDelta {
        self.summaries.remove(&(ixp, member));
        self.links.policies.remove(&(ixp, member));
        let was_covered = self
            .links
            .covered
            .get_mut(&ixp)
            .is_some_and(|s| s.remove(&member));
        if !was_covered {
            return LinkDelta::default();
        }
        let delta = self.relink(ixp, member);
        // Finalize-shape invariant: the per-IXP entries exist iff the
        // IXP has a covered member.
        if self.links.covered.get(&ixp).is_some_and(BTreeSet::is_empty) {
            self.links.covered.remove(&ixp);
            let links = self.links.per_ixp.remove(&ixp);
            debug_assert!(links.is_none_or(|l| l.is_empty()));
        }
        delta
    }

    /// Re-derive every link involving `member` at `ixp` against the
    /// maintained set — O(covered members), the per-event hot path.
    fn relink(&mut self, ixp: IxpId, member: Asn) -> LinkDelta {
        let mut delta = LinkDelta::default();
        let Some(covered) = self.links.covered.get(&ixp) else {
            return delta;
        };
        let me_covered = covered.contains(&member);
        let my_summary = self.summaries.get(&(ixp, member));
        let others: Vec<Asn> = covered.iter().copied().filter(|&b| b != member).collect();
        let links = self.links.per_ixp.entry(ixp).or_default();
        for b in others {
            let want = me_covered
                && my_summary.is_some_and(|s| s.allows(b))
                && self.summaries[&(ixp, b)].allows(member);
            let pair = if member < b { (member, b) } else { (b, member) };
            if want {
                if links.insert(pair) {
                    delta.added.push((ixp, pair.0, pair.1));
                }
            } else if links.remove(&pair) {
                delta.removed.push((ixp, pair.0, pair.1));
            }
        }
        delta
    }

    /// Rebuild summaries and the link set from the session state — the
    /// bootstrap path (per-event maintenance takes over afterwards).
    fn rebuild(&mut self) {
        self.summaries.clear();
        self.links = MlpLinkSet::default();
        for ((ixp, member), map) in &self.reach {
            self.summaries
                .insert((*ixp, *member), Reach::summarize(map.values()));
            self.links.covered.entry(*ixp).or_default().insert(*member);
            self.links.per_ixp.entry(*ixp).or_default();
            let default_policy = map
                .first_key_value()
                .map(|(_, p)| p.clone())
                .expect("reach entries are non-empty");
            self.links.policies.insert((*ixp, *member), default_policy);
        }
        let per_ixp_covered: Vec<(IxpId, Vec<Asn>)> = self
            .links
            .covered
            .iter()
            .map(|(ixp, s)| (*ixp, s.iter().copied().collect()))
            .collect();
        for (ixp, asns) in per_ixp_covered {
            let links = self.links.per_ixp.entry(ixp).or_default();
            for (i, &a) in asns.iter().enumerate() {
                let sa = &self.summaries[&(ixp, a)];
                for &b in &asns[i + 1..] {
                    if sa.allows(b) && self.summaries[&(ixp, b)].allows(a) {
                        links.insert((a, b));
                    }
                }
            }
        }
    }
}

/// Live state is itself a sink: streaming an observation is an
/// announce. Note the session gate still applies — an observation for
/// a member with no open `Join`ed session is dropped, mirroring how
/// `finalize()` drops observations for members outside `A_RS`. Feeding
/// a harvest into a live instance therefore requires opening the
/// sessions first (e.g. a `Join` per member in the connectivity data);
/// without that, every observation is silently ignored.
impl ObservationSink for LiveInferencer {
    fn push(&mut self, obs: Observation) {
        self.apply(&LiveEvent::Announce {
            ixp: obs.ixp,
            member: obs.member,
            prefix: obs.prefix,
            actions: obs.actions,
        });
    }
}

/// The canonical action encoding of a policy (what
/// [`LiveInferencer::observations`] emits): round-trips through
/// [`ExportPolicy::from_actions`] to the same policy.
fn canonical_actions(policy: &ExportPolicy) -> Vec<RsAction> {
    match policy {
        ExportPolicy::AllMembers => vec![RsAction::All],
        ExportPolicy::AllExcept(e) => std::iter::once(RsAction::All)
            .chain(e.iter().map(|&a| RsAction::Exclude(a)))
            .collect(),
        ExportPolicy::OnlyTo(i) => std::iter::once(RsAction::None)
            .chain(i.iter().map(|&a| RsAction::Include(a)))
            .collect(),
        ExportPolicy::Nobody => vec![RsAction::None],
    }
}

/// The from-scratch harvest of an ecosystem's *current* route-server
/// state: connectivity is exactly the open RS sessions, and every
/// `(member, prefix)` yields one observation whose actions are the
/// member's communities decoded under the IXP's scheme — the same
/// encode→decode path the live stream takes, so the two agree on every
/// representability edge case (unregistered 32-bit EXCLUDE targets,
/// implicit ALL).
///
/// This is live mode's equivalence anchor: for any event sequence,
/// `infer_links` over this harvest of the final state must equal the
/// incrementally-maintained [`LiveInferencer::current`] byte for byte.
pub fn full_harvest(eco: &Ecosystem) -> (ConnectivityData, Vec<Observation>) {
    let mut conn = ConnectivityData::default();
    let mut observations = Vec::new();
    for ixp in &eco.ixps {
        for m in ixp.members.values().filter(|m| m.rs_member) {
            conn.record(ixp.id, m.asn, ConnSource::LookingGlass);
            for ann in &m.announcements {
                let actions: Vec<RsAction> =
                    RouteServer::communities_for(m, &ann.prefix, &ixp.scheme)
                        .iter()
                        .filter_map(|c| ixp.scheme.decode(c))
                        .collect();
                observations.push(Observation {
                    ixp: ixp.id,
                    member: m.asn,
                    prefix: ann.prefix,
                    actions,
                    source: ObservationSource::ActiveRsLg,
                });
            }
        }
    }
    (conn, observations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::infer_links;
    use crate::report;

    fn ev_announce(member: u32, prefix: &str, actions: Vec<RsAction>) -> LiveEvent {
        LiveEvent::Announce {
            ixp: IxpId(0),
            member: Asn(member),
            prefix: prefix.parse().unwrap(),
            actions,
        }
    }

    fn join(member: u32) -> LiveEvent {
        LiveEvent::Join {
            ixp: IxpId(0),
            member: Asn(member),
        }
    }

    /// Three open members; the link set is the triangle.
    fn triangle() -> LiveInferencer {
        let mut li = LiveInferencer::new();
        for m in 1..=3 {
            li.apply(&join(m));
            let d = li.apply(&ev_announce(
                m,
                &format!("10.{m}.0.0/24"),
                vec![RsAction::All],
            ));
            assert!(d.removed.is_empty());
        }
        li
    }

    #[test]
    fn links_form_incrementally_with_exact_deltas() {
        let mut li = LiveInferencer::new();
        li.apply(&join(1));
        li.apply(&join(2));
        assert!(li.apply(&ev_announce(1, "10.1.0.0/24", vec![])).is_empty());
        let d = li.apply(&ev_announce(2, "10.2.0.0/24", vec![]));
        assert_eq!(d.added, vec![(IxpId(0), Asn(1), Asn(2))]);
        assert!(d.removed.is_empty());
        assert_eq!(li.current().links_at(IxpId(0)).len(), 1);
    }

    #[test]
    fn policy_retune_retracts_and_restores_links() {
        let mut li = triangle();
        assert_eq!(li.current().links_at(IxpId(0)).len(), 3);
        // 1 retunes to exclude 3: announce replaces the old policy.
        let d = li.apply(&ev_announce(
            1,
            "10.1.0.0/24",
            vec![RsAction::All, RsAction::Exclude(Asn(3))],
        ));
        assert_eq!(d.removed, vec![(IxpId(0), Asn(1), Asn(3))]);
        assert!(d.added.is_empty());
        // Retune back to open: the link returns.
        let d = li.apply(&ev_announce(1, "10.1.0.0/24", vec![RsAction::All]));
        assert_eq!(d.added, vec![(IxpId(0), Asn(1), Asn(3))]);
    }

    #[test]
    fn reannounce_with_same_policy_is_a_noop() {
        let mut li = triangle();
        let d = li.apply(&ev_announce(2, "10.2.0.0/24", vec![RsAction::All]));
        assert!(d.is_empty());
    }

    #[test]
    fn withdraw_retracts_per_prefix_intersection() {
        let mut li = triangle();
        // 1 announces a second prefix excluding 2: the intersection
        // drops the 1–2 link.
        let d = li.apply(&ev_announce(
            1,
            "10.9.0.0/24",
            vec![RsAction::All, RsAction::Exclude(Asn(2))],
        ));
        assert_eq!(d.removed, vec![(IxpId(0), Asn(1), Asn(2))]);
        // Withdrawing that prefix is an exact retraction.
        let d = li.apply(&LiveEvent::Withdraw {
            ixp: IxpId(0),
            member: Asn(1),
            prefix: "10.9.0.0/24".parse().unwrap(),
        });
        assert_eq!(d.added, vec![(IxpId(0), Asn(1), Asn(2))]);
        assert!(d.removed.is_empty());
    }

    #[test]
    fn leave_retracts_everything_and_rejoin_starts_clean() {
        let mut li = triangle();
        let d = li.apply(&LiveEvent::Leave {
            ixp: IxpId(0),
            member: Asn(2),
        });
        assert_eq!(d.removed.len(), 2, "both links of member 2 retract");
        assert!(!li.current().covered[&IxpId(0)].contains(&Asn(2)));
        // Rejoin: no state resurrects until it re-announces.
        li.apply(&join(2));
        assert_eq!(li.current().links_at(IxpId(0)).len(), 1);
        let d = li.apply(&ev_announce(2, "10.2.0.0/24", vec![]));
        assert_eq!(d.added.len(), 2);
    }

    #[test]
    fn withdrawing_last_prefix_uncovers_member() {
        let mut li = LiveInferencer::new();
        li.apply(&join(1));
        li.apply(&join(2));
        li.apply(&ev_announce(1, "10.1.0.0/24", vec![]));
        li.apply(&ev_announce(2, "10.2.0.0/24", vec![]));
        let d = li.apply(&LiveEvent::Withdraw {
            ixp: IxpId(0),
            member: Asn(1),
            prefix: "10.1.0.0/24".parse().unwrap(),
        });
        assert_eq!(d.removed.len(), 1);
        // Matches a from-scratch harvest where member 1 has no data:
        // still covered? No — no observations at all.
        assert!(!li.current().covered[&IxpId(0)].contains(&Asn(1)));
        assert!(!li.current().policies.contains_key(&(IxpId(0), Asn(1))));
    }

    #[test]
    fn announces_without_session_are_dropped() {
        let mut li = LiveInferencer::new();
        li.apply(&join(1));
        li.apply(&ev_announce(1, "10.1.0.0/24", vec![]));
        // 99 never joined.
        let d = li.apply(&ev_announce(99, "10.9.0.0/24", vec![]));
        assert!(d.is_empty());
        assert!(!li.current().covered[&IxpId(0)].contains(&Asn(99)));
    }

    #[test]
    fn empty_state_shape_matches_finalize() {
        let mut li = triangle();
        for m in 1..=3 {
            li.apply(&LiveEvent::Leave {
                ixp: IxpId(0),
                member: Asn(m),
            });
        }
        // No covered members → no per-IXP entries at all (the exact
        // shape finalize produces for an empty harvest).
        let expected = MlpLinkSet::default();
        assert_eq!(
            report::to_json(li.current()),
            report::to_json(&expected),
            "fully-retracted state must be byte-identical to empty"
        );
    }

    #[test]
    fn figure3_scenario_matches_batch_inferencer() {
        // The Fig. 3 worked example, through the live path.
        let mut li = LiveInferencer::new();
        for m in 1..=4 {
            li.apply(&join(m));
        }
        li.apply(&ev_announce(
            1,
            "10.1.0.0/24",
            vec![
                RsAction::None,
                RsAction::Include(Asn(2)),
                RsAction::Include(Asn(4)),
            ],
        ));
        for m in 2..=4 {
            li.apply(&ev_announce(
                m,
                &format!("10.{m}.0.0/24"),
                vec![RsAction::All],
            ));
        }
        let at0 = li.current().links_at(IxpId(0));
        assert_eq!(at0.len(), 5);
        assert!(!at0.contains(&(Asn(1), Asn(3))), "A blocks C (Fig. 3)");
    }

    #[test]
    fn bootstrap_equals_full_harvest() {
        let eco = Ecosystem::generate(mlpeer_ixp::EcosystemConfig::tiny(11));
        let li = LiveInferencer::from_ecosystem(&eco);
        let (conn, obs) = full_harvest(&eco);
        let expected = infer_links(&conn, &obs);
        assert_eq!(
            report::to_json(li.current()),
            report::to_json(&expected),
            "bootstrap must match the one-shot harvest byte for byte"
        );
        assert!(!li.current().unique_links().is_empty());
    }

    #[test]
    fn observations_rebuild_the_same_links() {
        let eco = Ecosystem::generate(mlpeer_ixp::EcosystemConfig::tiny(12));
        let li = LiveInferencer::from_ecosystem(&eco);
        let (conn, _) = full_harvest(&eco);
        let rebuilt = infer_links(&conn, &li.observations());
        assert_eq!(
            report::to_json(li.current()),
            report::to_json(&rebuilt),
            "materialized observations must round-trip the link set"
        );
    }

    #[test]
    fn sink_impl_feeds_announces() {
        let mut li = LiveInferencer::new();
        li.apply(&join(1));
        li.apply(&join(2));
        for m in 1..=2u32 {
            li.push(Observation {
                ixp: IxpId(0),
                member: Asn(m),
                prefix: format!("10.{m}.0.0/24").parse().unwrap(),
                actions: vec![],
                source: ObservationSource::Passive,
            });
        }
        assert_eq!(li.current().links_at(IxpId(0)).len(), 1);
        assert_eq!(li.event_count(), 4);
    }

    #[test]
    fn state_version_tracks_served_mutations_only() {
        let mut li = triangle();
        let v = li.state_version();
        // No-ops: re-announce of the same policy, unknown session,
        // membership-only join.
        li.apply(&ev_announce(2, "10.2.0.0/24", vec![RsAction::All]));
        li.apply(&ev_announce(99, "10.9.0.0/24", vec![]));
        li.apply(&join(9));
        assert_eq!(li.state_version(), v);
        // Link-neutral but served-state-changing: an open member
        // originates another open prefix. No link moves, but a
        // snapshot rendered now would differ — the live refresher
        // must publish for this.
        let d = li.apply(&ev_announce(2, "10.22.0.0/24", vec![RsAction::All]));
        assert!(d.is_empty(), "no link moved");
        assert_eq!(li.state_version(), v + 1);
        li.apply(&LiveEvent::Withdraw {
            ixp: IxpId(0),
            member: Asn(2),
            prefix: "10.22.0.0/24".parse().unwrap(),
        });
        assert_eq!(li.state_version(), v + 2);
        // Leave of a member with data bumps; leave of a data-less one
        // does not.
        li.apply(&LiveEvent::Leave {
            ixp: IxpId(0),
            member: Asn(3),
        });
        assert_eq!(li.state_version(), v + 3);
        li.apply(&LiveEvent::Leave {
            ixp: IxpId(0),
            member: Asn(9),
        });
        assert_eq!(li.state_version(), v + 3);
    }

    #[test]
    fn delta_merge_cancels() {
        let mut d = LinkDelta {
            added: vec![(IxpId(0), Asn(1), Asn(2))],
            removed: vec![],
        };
        d.merge(LinkDelta {
            added: vec![],
            removed: vec![(IxpId(0), Asn(1), Asn(2))],
        });
        assert!(d.is_empty());
        d.merge(LinkDelta {
            added: vec![(IxpId(0), Asn(2), Asn(3))],
            removed: vec![(IxpId(0), Asn(4), Asn(5))],
        });
        d.merge(LinkDelta {
            added: vec![(IxpId(0), Asn(4), Asn(5))],
            removed: vec![(IxpId(0), Asn(2), Asn(3))],
        });
        assert!(d.is_empty());
    }

    #[test]
    fn delta_between_diffs_link_sets() {
        let mut old = MlpLinkSet::default();
        old.per_ixp
            .entry(IxpId(0))
            .or_default()
            .extend([(Asn(1), Asn(2)), (Asn(1), Asn(3))]);
        old.per_ixp
            .entry(IxpId(1))
            .or_default()
            .insert((Asn(7), Asn(8)));
        let mut new = MlpLinkSet::default();
        new.per_ixp
            .entry(IxpId(0))
            .or_default()
            .extend([(Asn(1), Asn(2)), (Asn(2), Asn(3))]);
        new.per_ixp
            .entry(IxpId(2))
            .or_default()
            .insert((Asn(9), Asn(10)));

        let d = LinkDelta::between(&old, &new);
        assert_eq!(
            d.added,
            vec![(IxpId(0), Asn(2), Asn(3)), (IxpId(2), Asn(9), Asn(10))]
        );
        assert_eq!(
            d.removed,
            vec![(IxpId(0), Asn(1), Asn(3)), (IxpId(1), Asn(7), Asn(8))]
        );
        assert!(LinkDelta::between(&new, &new).is_empty());

        // Applying the delta to `old` reproduces `new` exactly.
        let mut applied: BTreeSet<(IxpId, Asn, Asn)> = old
            .per_ixp
            .iter()
            .flat_map(|(ixp, s)| s.iter().map(move |&(a, b)| (*ixp, a, b)))
            .collect();
        for l in &d.removed {
            assert!(applied.remove(l));
        }
        for l in &d.added {
            assert!(applied.insert(*l));
        }
        let want: BTreeSet<_> = new
            .per_ixp
            .iter()
            .flat_map(|(ixp, s)| s.iter().map(move |&(a, b)| (*ixp, a, b)))
            .collect();
        assert_eq!(applied, want);
    }
}
