//! End-to-end durability: boot the live stack with a durable store
//! attached, let churn publish a few epochs, then simulate a crash
//! (drop everything without ceremony) and reboot from the same data
//! directory — asserting the recovered service is byte-identical over
//! real HTTP: same epoch, same content ETag, same `?at=` time-travel
//! bodies, and the same `/v1/changes?since=0` diff even though the
//! in-memory delta ring died with the process (the durable fold serves
//! it). A second test tears the log's tail mid-record and checks
//! recovery truncates to the last valid epoch and keeps serving —
//! with the torn epoch drawing the documented 410.

use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use mlpeer_bench::Scale;
use mlpeer_data::churn::ChurnConfig;
use mlpeer_ixp::{Ecosystem, EcosystemConfig};
use mlpeer_serve::{
    bootstrap, spawn_live_refresher, spawn_server, DurableStore, LiveConfig, LiveStats, Snapshot,
    SnapshotStore,
};

/// One request on a fresh connection; returns (status, headers, body).
fn get(addr: SocketAddr, path: &str) -> (u16, String, String) {
    let mut s = TcpStream::connect(addr).unwrap();
    write!(
        s,
        "GET {path} HTTP/1.1\r\nHost: e2e\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let parts = mlpeer_serve::http::read_response(&mut std::io::BufReader::new(s)).unwrap();
    let head: String = parts
        .headers
        .iter()
        .map(|(n, v)| format!("{n}: {v}\r\n"))
        .collect();
    (parts.status, head, String::from_utf8(parts.body).unwrap())
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mlpeer-durability-e2e-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Boot the live stack over `dir` and run churn until `min_epoch`
/// epochs have been published, then stop the churn loop (leaving the
/// store and durable log attached and quiescent).
fn churn_to_epoch(dir: &PathBuf, min_epoch: u64) -> Arc<SnapshotStore> {
    let eco = Ecosystem::generate(EcosystemConfig::tiny(11));
    let (inferencer, snapshot) = bootstrap(&eco, "tiny", 11);
    let store = SnapshotStore::with_change_capacity(snapshot, 64);
    let durable = Arc::new(DurableStore::open(dir).unwrap());
    store.attach_durable(durable).unwrap();

    let shutdown = Arc::new(AtomicBool::new(false));
    let stats = Arc::new(LiveStats::default());
    let refresher = spawn_live_refresher(
        Arc::clone(&store),
        eco,
        inferencer,
        LiveConfig {
            interval: Duration::from_millis(20),
            events_per_tick: 25,
            churn: ChurnConfig {
                seed: 5,
                ..ChurnConfig::default()
            },
            scale: "tiny".into(),
            seed: 11,
        },
        stats,
        Arc::clone(&shutdown),
    );
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while store.load().epoch < min_epoch && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    shutdown.store(true, Ordering::Relaxed);
    refresher.join().unwrap();
    assert!(
        store.load().epoch >= min_epoch,
        "churn loop must publish at least {min_epoch} epochs"
    );
    store
}

#[test]
fn crash_and_reboot_serve_byte_identical_history() {
    let dir = temp_dir("reboot");
    let store = churn_to_epoch(&dir, 3);
    let final_epoch = store.load().epoch;

    // ---- Capture the pre-crash service, over real TCP. ----
    let mut server = spawn_server(store, "127.0.0.1:0", 2).unwrap();
    let addr = server.addr;
    let mut paths = vec!["/v1/ixps".to_string(), "/v1/changes?since=0".to_string()];
    paths.push(format!("/v1/changes?since={final_epoch}"));
    for epoch in 0..=final_epoch {
        paths.push(format!("/v1/ixps?at={epoch}"));
    }
    let before: Vec<(u16, String, String)> = paths.iter().map(|p| get(addr, p)).collect();
    for (p, (status, _, _)) in paths.iter().zip(&before) {
        assert_eq!(*status, 200, "{p} must answer pre-crash");
    }
    server.stop();
    // ---- Crash: everything in memory dies. No flush, no farewell. ----
    // (Every append already hit disk synchronously at publish time.)

    // ---- Reboot from the same data directory. ----
    let durable = Arc::new(DurableStore::open(&dir).unwrap());
    let recovered = durable.latest().expect("log must hold the final epoch");
    assert_eq!(
        recovered.epoch, final_epoch,
        "recovery finds the last epoch"
    );
    let store = SnapshotStore::resume(recovered, 64);
    store.attach_durable(durable).unwrap();
    let mut server = spawn_server(store, "127.0.0.1:0", 2).unwrap();
    let addr = server.addr;

    for (p, (status, head, body)) in paths.iter().zip(&before) {
        let (status2, head2, body2) = get(addr, p);
        assert_eq!(status2, *status, "{p}: status must survive the reboot");
        assert_eq!(
            &body2, body,
            "{p}: body must be byte-identical after reboot"
        );
        let etag = |h: &str| {
            h.lines()
                .find(|l| l.starts_with("etag:"))
                .map(str::to_string)
        };
        assert_eq!(
            etag(&head2),
            etag(head),
            "{p}: ETag must survive the reboot"
        );
    }
    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_log_tail_recovers_to_last_valid_epoch() {
    let dir = temp_dir("torn");
    let store = churn_to_epoch(&dir, 2);
    let final_epoch = store.load().epoch;
    let prev_etag = store
        .durable()
        .unwrap()
        .snapshot_at(final_epoch - 1)
        .expect("previous epoch on disk")
        .etag;
    drop(store);

    // ---- Tear the tail: chop into the last record's bytes. ----
    let seg = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .max()
        .expect("a segment file");
    let len = std::fs::metadata(&seg).unwrap().len();
    let f = std::fs::OpenOptions::new().write(true).open(&seg).unwrap();
    f.set_len(len - 7).unwrap(); // mid-trailer: checksum cannot verify

    // ---- Recovery truncates to the last valid record and serves. ----
    let durable = Arc::new(DurableStore::open(&dir).unwrap());
    assert_eq!(
        durable.latest_epoch(),
        Some(final_epoch - 1),
        "torn final record must be discarded, not misread"
    );
    let recovered = durable.latest().unwrap();
    assert_eq!(
        recovered.etag, prev_etag,
        "recovered bytes are the old epoch's"
    );
    let store = SnapshotStore::resume(recovered, 64);
    store.attach_durable(Arc::clone(&durable)).unwrap();
    let mut server = spawn_server(Arc::clone(&store), "127.0.0.1:0", 2).unwrap();
    let addr = server.addr;

    let (status, head, _) = get(addr, "/v1/ixps");
    assert_eq!(status, 200);
    assert!(
        head.contains(&format!("etag: \"{prev_etag}\"")),
        "service resumes at the surviving epoch: {head}"
    );
    // The torn epoch rewound history: it is the *future* again from
    // the recovered epoch's point of view, so `?at=` draws 400 (the
    // 410 is reserved for retained-range epochs compacted away).
    let (status, _, body) = get(addr, &format!("/v1/ixps?at={final_epoch}"));
    assert_eq!(status, 400, "torn epoch is ahead of the clock: {body}");

    // And the log is append-able again: a fresh publish lands as the
    // next epoch and persists.
    let eco = Ecosystem::generate(EcosystemConfig::tiny(23));
    let epoch = store.publish(Snapshot::of_pipeline(&eco, Scale::Tiny, 23));
    assert_eq!(epoch, final_epoch, "epoch counter resumes past the tear");
    assert_eq!(durable.latest_epoch(), Some(final_epoch));
    let (status, _, _) = get(addr, &format!("/v1/ixps?at={epoch}"));
    assert_eq!(status, 200, "the re-published epoch is served from disk");
    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}
