//! End-to-end test for the `/v1/validate` endpoint: the in-process
//! server must put the exact `render_validate` bytes on the wire (with
//! the snapshot's content ETag and a working 304 revalidation), and the
//! real `mlpeer-serve` binary must keep every verdict byte-stable
//! across a `kill -9` + `--data-dir` recovery — the validation report
//! rides the durable log (record version 3), so a rebooted server
//! serves the same cross-validation story without re-deriving the
//! corpus.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

use mlpeer_bench::Scale;
use mlpeer_ixp::Ecosystem;
use mlpeer_serve::http::{Request, Response};
use mlpeer_serve::{api, ServerStats, Snapshot, SnapshotStore};

/// One request on a fresh connection; returns (status, headers, body).
fn get(addr: SocketAddr, path: &str, extra_header: Option<&str>) -> (u16, String, String) {
    let mut s = TcpStream::connect(addr).unwrap();
    let extra = extra_header.map(|h| format!("{h}\r\n")).unwrap_or_default();
    write!(
        s,
        "GET {path} HTTP/1.1\r\nHost: e2e\r\n{extra}Connection: close\r\n\r\n"
    )
    .unwrap();
    let parts = mlpeer_serve::http::read_response(&mut std::io::BufReader::new(s)).unwrap();
    let head: String = parts
        .headers
        .iter()
        .map(|(n, v)| format!("{n}: {v}\r\n"))
        .collect();
    (parts.status, head, String::from_utf8(parts.body).unwrap())
}

fn etag_of(head: &str) -> String {
    head.lines()
        .find_map(|l| l.strip_prefix("etag: "))
        .expect("response carries an ETag")
        .trim()
        .to_string()
}

#[test]
fn validate_endpoint_serves_wire_identical_bytes_with_revalidation() {
    let seed = 7u64;
    let eco = Ecosystem::generate(Scale::Tiny.config(seed));
    let snapshot = Snapshot::of_pipeline(&eco, Scale::Tiny, seed);
    assert!(
        snapshot.validation.totals.confirmed > 0,
        "pipeline snapshot must carry a non-trivial validation report"
    );
    let etag = snapshot.etag.clone();
    let store = SnapshotStore::new(snapshot);
    let mut server = mlpeer_serve::spawn_server(Arc::clone(&store), "127.0.0.1:0", 2).unwrap();

    let (status, head, wire_body) = get(server.addr, "/v1/validate", None);
    assert_eq!(status, 200, "{wire_body}");
    assert!(
        head.contains(&format!("etag: \"{etag}\"")),
        "/v1/validate is snapshot-addressed: {head}"
    );

    // The wire body is byte-identical to an in-process render of the
    // same snapshot — no serving-layer reserialization drift.
    let snap = store.load();
    let direct: Response = api::route(
        &Request {
            method: "GET".into(),
            path: "/v1/validate".into(),
            ..Request::default()
        },
        &snap,
        &ServerStats::default(),
        &mlpeer_serve::ChangeLog::new(8),
        None,
        None,
        None,
        None,
        None,
    );
    assert_eq!(
        wire_body.as_bytes(),
        direct.body.as_slice(),
        "wire == direct render"
    );

    // Conditional GET revalidates to an empty 304.
    let inm = format!("If-None-Match: \"{etag}\"");
    let (status, _, body) = get(server.addr, "/v1/validate", Some(&inm));
    assert_eq!(status, 304);
    assert!(body.is_empty());

    // The stats endpoint tells the same totals (CI's smoke job asserts
    // the full numeric equality through jq; here: presence + verdicts).
    let (_, _, stats_body) = get(server.addr, "/v1/stats", None);
    assert!(
        stats_body.contains("\"validation\""),
        "stats must summarize validation: {stats_body}"
    );
    for verdict in ["confirmed", "unknown", "contradicted"] {
        assert!(wire_body.contains(verdict), "{verdict} in {wire_body:.>60}");
        assert!(stats_body.contains(verdict));
    }
    server.stop();
}

// ---- Real-binary crash/recovery below. ----

/// Locate the `mlpeer-serve` binary cargo built alongside the tests
/// (`target/<profile>/deps/this_test` → `target/<profile>/mlpeer-serve`),
/// same resolution idiom as `mlpeer_dist::default_worker_cmd`.
fn serve_bin() -> PathBuf {
    if let Ok(path) = std::env::var("MLPEER_SERVE_BIN") {
        return PathBuf::from(path);
    }
    let exe = std::env::current_exe().expect("test exe path");
    let mut dir = exe.parent().expect("deps dir").to_path_buf();
    dir.pop();
    let candidate = dir.join("mlpeer-serve");
    assert!(
        candidate.is_file(),
        "mlpeer-serve binary built alongside tests (run the whole workspace \
         test suite, or set MLPEER_SERVE_BIN)"
    );
    candidate
}

/// Boot the real binary and block until it announces its bound address
/// on stderr; a drain thread keeps the pipe from ever backpressuring
/// the server.
fn spawn_serve(data_dir: &Path) -> (Child, SocketAddr) {
    let mut child = Command::new(serve_bin())
        .args([
            "tiny",
            "--seed=7",
            "--addr=127.0.0.1:0",
            "--engine=threaded",
            "--http-workers=2",
            &format!("--data-dir={}", data_dir.display()),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn mlpeer-serve");
    let stderr = child.stderr.take().expect("stderr piped");
    let mut lines = BufReader::new(stderr);
    let mut line = String::new();
    let addr = loop {
        line.clear();
        if lines.read_line(&mut line).expect("read server stderr") == 0 {
            panic!("mlpeer-serve exited before announcing its address");
        }
        if let Some(rest) = line.trim().strip_prefix("# serving on http://") {
            let host = rest.split_whitespace().next().expect("addr token");
            break host.parse::<SocketAddr>().expect("bound address");
        }
    };
    std::thread::spawn(move || {
        let mut sink = std::io::sink();
        let _ = std::io::copy(&mut lines, &mut sink);
    });
    (child, addr)
}

/// Retry the first connection briefly: the accept loop is up when the
/// address is printed, but a just-spawned process can still lose a race
/// on a loaded CI box.
fn get_with_retry(addr: SocketAddr, path: &str) -> (u16, String, String) {
    for _ in 0..50 {
        if TcpStream::connect(addr).is_ok() {
            return get(addr, path, None);
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    panic!("{path}: server at {addr} never answered");
}

#[test]
fn kill_nine_and_data_dir_recovery_keep_verdicts_byte_stable() {
    let dir = std::env::temp_dir().join(format!("mlpeer-validate-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // ---- First life: boot, capture the validation story. ----
    let (mut child, addr) = spawn_serve(&dir);
    let (status, head, before) = get_with_retry(addr, "/v1/validate");
    assert_eq!(status, 200, "{before}");
    let etag = etag_of(&head);
    assert!(
        before.contains("\"confirmed\""),
        "live report must carry verdicts: {before:.>60}"
    );

    // ---- kill -9: no drain, no flush, no farewell. ----
    child.kill().expect("SIGKILL");
    child.wait().expect("reap");

    // ---- Second life: same --data-dir. The binary recovers the
    //      epoch from the durable log (validation included, record
    //      version 3) instead of re-running the pipeline. ----
    let (mut child, addr) = spawn_serve(&dir);
    let (status, head, after) = get_with_retry(addr, "/v1/validate");
    assert_eq!(status, 200, "{after}");
    assert_eq!(
        after, before,
        "verdicts must be byte-stable across kill -9 + recovery"
    );
    assert_eq!(etag_of(&head), etag, "content ETag survives the crash");

    // The first life's ETag still revalidates against the second life.
    let inm = format!("If-None-Match: {etag}");
    let (status, _, body) = get(addr, "/v1/validate", Some(&inm));
    assert_eq!(status, 304, "{body}");

    child.kill().expect("stop recovered server");
    child.wait().expect("reap");
    let _ = std::fs::remove_dir_all(&dir);
}
