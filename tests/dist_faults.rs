//! Fault-injection end-to-end suite for the multi-process harvest:
//! workers are crashed (SIGKILL mid-shard and mid-frame), stalled past
//! the deadline, made to corrupt frames, and made to double-deliver
//! results — and in every case the coordinator retries, dedups, or
//! degrades such that the final snapshot's content ETag is
//! byte-identical to the single-process run. The same invariant is
//! driven through live mode: a worker killed between ticks is respawned
//! and reseeded, and the folded stream stays equal to one serial
//! `LiveInferencer`.
//!
//! The ETag is the content hash over the link set and the observation
//! corpus, and every `/v1/*` body renders from exactly those — so ETag
//! equality here is body equality over HTTP (`tests/serve_e2e.rs`
//! pins that correspondence).

use std::sync::Arc;
use std::time::Duration;

use mlpeer::live::{decode_message, LiveInferencer};
use mlpeer_bench::Scale;
use mlpeer_data::churn::{event_messages, ChurnConfig, ChurnGen};
use mlpeer_dist::{default_worker_cmd, DistConfig, DistLive, DistStats, Fault};
use mlpeer_ixp::Ecosystem;
use mlpeer_serve::Snapshot;

/// The real worker binary, resolved the way production does (sibling
/// of the test executable's target dir). The workspace `cargo test`
/// builds every bin before running integration tests, so this must
/// resolve — a `None` here is a build-layout regression, not a skip.
fn worker_cmd() -> (std::path::PathBuf, Vec<String>) {
    default_worker_cmd().expect("mlpeer-dist-worker binary must be built alongside the tests")
}

fn dist_cfg(workers: usize, faults: Vec<(usize, u32, Fault)>) -> DistConfig {
    DistConfig {
        workers,
        timeout: Duration::from_secs(120),
        max_retries: 2,
        worker_cmd: Some(worker_cmd()),
        faults,
    }
}

/// Serial and distributed snapshots of the same `(scale, seed)`; the
/// caller asserts on the pair plus the recorded coordinator counters.
fn snapshots(
    scale: Scale,
    seed: u64,
    cfg: &DistConfig,
) -> (Snapshot, Snapshot, mlpeer_dist::DistStatsSnapshot) {
    let eco = Ecosystem::generate(scale.config(seed));
    let serial = Snapshot::of_pipeline(&eco, scale, seed);
    let stats = DistStats::new(cfg.workers as u64);
    let dist = Snapshot::of_pipeline_dist(&eco, scale, seed, cfg, &stats);
    (serial, dist, stats.snapshot())
}

/// Every injected fault class at once — a silent SIGKILL before the
/// reply, a SIGKILL halfway through writing the result frame, a
/// corrupted payload byte, and a double-delivered result — across
/// multiple seeds: the coordinator retries the crashed and corrupt
/// shards, dedups the duplicate, and the ETag never moves.
#[test]
fn injected_crashes_corruption_and_duplicates_keep_etag_identical() {
    for seed in [20130501u64, 777] {
        let cfg = dist_cfg(
            3,
            vec![
                (0, 0, Fault::CrashSilent),
                (0, 1, Fault::CrashMidFrame),
                (1, 0, Fault::Garbage),
                (2, 0, Fault::Duplicate),
            ],
        );
        let (serial, dist, snap) = snapshots(Scale::Tiny, seed, &cfg);
        assert_eq!(
            dist.etag, serial.etag,
            "seed {seed}: ETag must survive fault injection"
        );
        assert_eq!(dist.links, serial.links, "seed {seed}");
        assert_eq!(dist.observation_count, serial.observation_count);
        assert_eq!(dist.passive_stats, serial.passive_stats);
        // Shard 0 failed twice (silent kill, then torn frame), shard 1
        // once (checksum); each failure is one retry.
        assert!(snap.retried >= 3, "seed {seed}: {snap:?}");
        // The double-delivered result folded exactly once.
        assert!(snap.deduped >= 1, "seed {seed}: {snap:?}");
        assert_eq!(snap.degraded, 0, "retries must suffice: {snap:?}");
        assert!(snap.spawned >= 3 + 3, "fresh process per attempt: {snap:?}");
    }
}

/// A worker stalled far past the deadline is killed, counted, and
/// retried — the answer is unchanged, only slower.
#[test]
fn stalled_worker_is_killed_counted_and_retried() {
    let seed = 20130501u64;
    let mut cfg = dist_cfg(2, vec![(1, 0, Fault::StallMs(600_000))]);
    cfg.timeout = Duration::from_secs(10);
    let (serial, dist, snap) = snapshots(Scale::Tiny, seed, &cfg);
    assert_eq!(dist.etag, serial.etag, "ETag must survive a stall");
    assert!(snap.timed_out >= 1, "{snap:?}");
    assert!(snap.retried >= 1, "{snap:?}");
    assert_eq!(snap.degraded, 0, "{snap:?}");
}

/// When the worker binary cannot be spawned at all, every shard
/// degrades to in-process execution — which *is* the serial code path,
/// so the ETag cannot move.
#[test]
fn unspawnable_worker_degrades_to_identical_snapshot() {
    let seed = 4242u64;
    let cfg = DistConfig {
        workers: 3,
        worker_cmd: Some((
            std::path::PathBuf::from("/nonexistent/mlpeer-dist-worker"),
            Vec::new(),
        )),
        ..DistConfig::new(3)
    };
    let (serial, dist, snap) = snapshots(Scale::Tiny, seed, &cfg);
    assert_eq!(dist.etag, serial.etag);
    assert_eq!(snap.spawned, 0, "{snap:?}");
    assert!(snap.degraded >= 1, "every shard must degrade: {snap:?}");
}

/// Scale axis of the acceptance criterion: the equality holds at a
/// second (larger) scale and worker count, fault-free.
#[test]
fn etag_equality_holds_across_scales_and_worker_counts() {
    for (scale, seed, workers) in [(Scale::Tiny, 1u64, 2usize), (Scale::Small, 20130501, 4)] {
        let cfg = dist_cfg(workers, Vec::new());
        let (serial, dist, snap) = snapshots(scale, seed, &cfg);
        assert_eq!(
            dist.etag, serial.etag,
            "{scale:?}/seed {seed}/{workers} workers"
        );
        assert_eq!(snap.degraded, 0, "{snap:?}");
        assert!(snap.spawned >= 1, "{snap:?}");
    }
}

/// Live mode under `kill -9`: a worker process killed between ticks is
/// respawned and reseeded on the next tick touching its shard, and the
/// folded link set, observation corpus, and publish gating stay equal
/// to one serial `LiveInferencer` over the same event stream.
#[test]
fn live_worker_killed_between_ticks_recovers_byte_identically() {
    let seed = 31337u64;
    let mut eco = Ecosystem::generate(Scale::Tiny.config(seed));
    let mut serial = LiveInferencer::from_ecosystem(&eco);

    let stats = Arc::new(DistStats::new(3));
    let mut dist = DistLive::new(&eco, dist_cfg(3, Vec::new()), Arc::clone(&stats));
    assert!(dist.proc_shards() >= 1, "live workers must be processes");

    let mut churn = ChurnGen::new(
        &eco,
        ChurnConfig {
            seed: seed ^ 0xF00D,
            ..ChurnConfig::default()
        },
    );
    let mut clock = 0u64;
    for tick in 0..6 {
        if tick == 2 || tick == 4 {
            // SIGKILL a live worker between ticks; the next tick that
            // routes an event to its shard must respawn and reseed it.
            dist.kill_worker(tick % dist.shard_count());
        }
        let mut events = Vec::new();
        for _ in 0..15 {
            let event = churn.next_event(&eco);
            eco.apply_churn(&event);
            let ixp = event.ixp();
            let scheme = &eco.ixp(ixp).scheme;
            for msg in event_messages(&eco, &event, clock) {
                events.extend(decode_message(ixp, scheme, &msg));
            }
            clock += 1;
        }
        for e in &events {
            serial.apply(e);
        }
        let outcome = dist.tick(&events);
        assert_eq!(&outcome.links, serial.current(), "tick {tick}: links");
        assert_eq!(
            outcome.observations,
            serial.observations(),
            "tick {tick}: observations"
        );
    }
    let snap = stats.snapshot();
    assert!(
        snap.retried >= 1,
        "killed workers must be respawned, not ignored: {snap:?}"
    );
    assert_eq!(snap.degraded, 0, "respawn must succeed: {snap:?}");

    // End anchor: the distributed state equals a from-scratch harvest
    // of the churned ecosystem.
    let fresh = LiveInferencer::from_ecosystem(&eco);
    let (links, observations) = dist.state();
    assert_eq!(&links, fresh.current());
    assert_eq!(observations, fresh.observations());
    dist.shutdown();
}
