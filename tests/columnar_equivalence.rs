//! Ecosystem-scale contract for the columnar hot path: harvesting
//! wire-encoded archives through zero-copy views — serial or sharded —
//! is byte-identical to the struct path on a full generated dataset,
//! and the wire bytes round-trip between the two representations.

use mlpeer::connectivity::gather_connectivity;
use mlpeer::dict::dictionary_from_connectivity;
use mlpeer::infer::LinkInferencer;
use mlpeer::passive::{
    harvest_passive, harvest_passive_bytes, harvest_passive_bytes_sharded, PassiveConfig,
};
use mlpeer::Observation;
use mlpeer_bgp::view::MrtBytes;
use mlpeer_bgp::Asn;
use mlpeer_data::collector::{build_passive, CollectorConfig};
use mlpeer_data::irr::{build_irr, IrrConfig};
use mlpeer_data::lg::build_lg_roster;
use mlpeer_data::Sim;
use mlpeer_ixp::{Ecosystem, EcosystemConfig};
use mlpeer_topo::infer::{infer_relationships, InferConfig};

#[test]
fn columnar_harvest_matches_struct_harvest_at_ecosystem_scale() {
    let seed = 4242u64;
    let eco = Ecosystem::generate(EcosystemConfig::tiny(seed));
    let sim = Sim::new(&eco);
    let irr = build_irr(&eco, &IrrConfig::default());
    let lgs = build_lg_roster(&sim, seed ^ 0x22, 70, 0.2);
    let conn = gather_connectivity(&sim, &lgs, &irr);
    let dict = dictionary_from_connectivity(&eco, &conn);
    let dataset = build_passive(&sim, &CollectorConfig::paper_like(seed ^ 0x33));
    let public_paths: Vec<Vec<Asn>> = dataset
        .collectors
        .iter()
        .flat_map(|(_, a)| a.rib.iter().map(|e| e.attrs.as_path.dedup_prepends()))
        .collect();
    let rels = infer_relationships(&public_paths, &InferConfig::default());
    let cfg = PassiveConfig::default();

    // Struct lane.
    let mut struct_sink: (Vec<Observation>, LinkInferencer) = Default::default();
    let struct_stats = harvest_passive(&dataset, &dict, &conn, &rels, &cfg, &mut struct_sink);
    assert!(struct_stats.observations > 0, "non-trivial dataset");

    // The columnar lane consumes the same wire bytes a collector would
    // serve; both directions of the representation round-trip.
    let bytes = dataset.to_bytes();
    assert_eq!(bytes.rib_len(), dataset.rib_len());
    assert_eq!(bytes.update_len(), dataset.update_len());
    for ((name_a, archive), (name_b, wire)) in dataset.collectors.iter().zip(&bytes.collectors) {
        assert_eq!(name_a, name_b);
        assert_eq!(&wire.to_archive(), archive, "{name_a} round-trips");
        assert_eq!(
            MrtBytes::from_archive(archive).as_bytes(),
            wire.as_bytes(),
            "{name_a} re-encodes to identical bytes"
        );
    }

    // Serial view lane.
    let mut view_sink: (Vec<Observation>, LinkInferencer) = Default::default();
    let view_stats = harvest_passive_bytes(&bytes, &dict, &conn, &rels, &cfg, &mut view_sink);
    assert_eq!(view_stats, struct_stats, "stats identical");
    assert_eq!(view_sink.0, struct_sink.0, "observations identical");
    assert_eq!(
        view_sink.1.finalize(&conn),
        struct_sink.1.finalize(&conn),
        "inference state identical"
    );

    // Sharded view lane (whatever thread count this container has).
    let (sharded_sink, sharded_stats) = harvest_passive_bytes_sharded::<(
        Vec<Observation>,
        LinkInferencer,
    )>(&bytes, &dict, &conn, &rels, &cfg);
    assert_eq!(sharded_stats, struct_stats);
    assert_eq!(sharded_sink.0, struct_sink.0);
    assert_eq!(
        sharded_sink.1.finalize(&conn),
        struct_sink.1.finalize(&conn)
    );
}
