//! End-to-end serving test: generate an ecosystem, run the inference
//! pipeline, boot the real HTTP server on an ephemeral port, and query
//! every endpoint over actual TCP — asserting status codes, ETag
//! revalidation, agreement with a direct (in-process) render of the
//! same snapshot, and that a snapshot refresh is visible to new
//! requests without disturbing the old epoch's readers.

use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

use mlpeer_bench::{run_pipeline, Scale};
use mlpeer_ixp::Ecosystem;
use mlpeer_serve::http::{Request, Response};
use mlpeer_serve::{api, Snapshot, SnapshotStore};
use mlpeer_serve::{run_load, spawn_server, LoadConfig, ServerStats};

fn build_snapshot(eco: &Ecosystem, seed: u64) -> Snapshot {
    Snapshot::of_pipeline(eco, Scale::Tiny, seed)
}

/// One request on a fresh connection via the shared client-side parser;
/// returns (status, rendered headers, body).
fn get(addr: SocketAddr, path: &str, extra_header: Option<&str>) -> (u16, String, String) {
    let mut s = TcpStream::connect(addr).unwrap();
    let extra = extra_header.map(|h| format!("{h}\r\n")).unwrap_or_default();
    write!(
        s,
        "GET {path} HTTP/1.1\r\nHost: e2e\r\n{extra}Connection: close\r\n\r\n"
    )
    .unwrap();
    let parts = mlpeer_serve::http::read_response(&mut std::io::BufReader::new(s)).unwrap();
    let head: String = parts
        .headers
        .iter()
        .map(|(n, v)| format!("{n}: {v}\r\n"))
        .collect();
    (parts.status, head, String::from_utf8(parts.body).unwrap())
}

/// Minimal JSON well-formedness check: balanced braces/brackets outside
/// strings, non-empty object. (The vendored serde_json only serializes,
/// so the test validates shape rather than re-parsing; CI's smoke job
/// additionally runs the bodies through `jq`.)
fn assert_valid_json_object(body: &str, ctx: &str) {
    let body = body.trim();
    assert!(
        body.starts_with('{') && body.ends_with('}'),
        "{ctx}: not an object: {body:.>40}"
    );
    let (mut depth, mut in_str, mut esc) = (0i64, false, false);
    for c in body.chars() {
        if in_str {
            match (esc, c) {
                (true, _) => esc = false,
                (false, '\\') => esc = true,
                (false, '"') => in_str = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' | '[' => depth += 1,
            '}' | ']' => depth -= 1,
            _ => {}
        }
        assert!(depth >= 0, "{ctx}: unbalanced nesting");
    }
    assert_eq!(depth, 0, "{ctx}: unbalanced nesting");
    assert!(!in_str, "{ctx}: unterminated string");
}

#[test]
fn boot_query_refresh_over_real_tcp() {
    let seed = 20130501u64;
    let eco = Ecosystem::generate(Scale::Tiny.config(seed));
    let snapshot = build_snapshot(&eco, seed);
    let etag = snapshot.etag.clone();
    let store = SnapshotStore::new(snapshot);
    let mut server = spawn_server(Arc::clone(&store), "127.0.0.1:0", 3).expect("bind");

    // A member and a prefix that certainly exist in the snapshot.
    let snap = store.load();
    let member = *snap
        .links
        .unique_links()
        .iter()
        .next()
        .map(|(a, _)| a)
        .unwrap();
    let prefix_q = "10.0.0.0/8";

    // -- every endpoint answers 200 with a well-formed JSON object and
    //    the snapshot ETag --
    let member_path = format!("/v1/member/{}", member.value());
    for path in [
        "/healthz",
        "/v1/ixps",
        "/v1/ixp/0/links",
        member_path.as_str(),
        &format!("/v1/prefix/{prefix_q}"),
        "/v1/stats",
    ] {
        let (status, head, body) = get(server.addr, path, None);
        assert_eq!(status, 200, "{path}: {body}");
        assert_valid_json_object(&body, path);
        // Snapshot-addressed endpoints carry the content ETag;
        // /healthz and /v1/stats (live counters) deliberately don't.
        if path.starts_with("/v1/") && path != "/v1/stats" {
            assert!(
                head.contains(&format!("etag: \"{etag}\"")),
                "{path} carries the snapshot ETag"
            );
        }
    }

    // -- the wire body is byte-identical to an in-process render of the
    //    same snapshot --
    let (_, _, wire_body) = get(server.addr, &member_path, None);
    let direct: Response = api::route(
        &Request {
            method: "GET".into(),
            path: member_path.clone(),
            ..Request::default()
        },
        &snap,
        &ServerStats::default(),
        &mlpeer_serve::ChangeLog::new(8),
        None,
        None,
        None,
        None,
        None,
    );
    assert_eq!(
        wire_body.as_bytes(),
        direct.body.as_slice(),
        "wire == direct render"
    );

    // -- conditional GET revalidates to an empty 304 --
    let inm = format!("If-None-Match: \"{etag}\"");
    let (status, head, body) = get(server.addr, "/v1/ixps", Some(&inm));
    assert_eq!(status, 304);
    assert!(body.is_empty());
    assert!(head.contains("etag:"));

    // -- 404/400 shapes --
    assert_eq!(get(server.addr, "/nope", None).0, 404);
    assert_eq!(get(server.addr, "/v1/member/0", None).0, 404);
    assert_eq!(get(server.addr, "/v1/prefix/banana", None).0, 400);

    // -- a small load runs clean through the pooled server --
    let report = run_load(
        server.addr,
        &LoadConfig {
            connections: 3,
            requests_per_connection: 50,
            targets: vec!["/v1/ixps".into(), member_path.clone(), "/healthz".into()],
        },
    );
    assert_eq!(report.errors, 0, "load errors");
    assert_eq!(report.requests, 150);
    assert!(report.latency_us(0.5) > 0);

    // -- refresh: publish a rebuilt snapshot; new requests see the new
    //    epoch and the same content keeps the same ETag, while the Arc
    //    loaded before the swap is untouched --
    let pre_swap = store.load();
    let epoch = store.publish(build_snapshot(&eco, seed));
    assert_eq!(epoch, 1);
    let (_, head, body) = get(server.addr, "/healthz", None);
    assert!(body.contains("\"epoch\": 1"), "{body}");
    let (status, _, _) = get(server.addr, "/v1/ixps", Some(&inm));
    assert_eq!(
        status, 304,
        "identical re-harvest keeps the ETag valid across epochs"
    );
    assert_eq!(pre_swap.epoch, 0, "held reader view survives the swap");
    assert_eq!(pre_swap.etag, etag);
    let _ = head;

    // -- server statistics moved --
    let (_, _, stats_body) = get(server.addr, "/v1/stats", None);
    assert!(stats_body.contains("\"requests\""));
    assert!(server.stats.requests() > 150);
    assert!(server.stats.not_modified() >= 2);
    server.stop();
}

/// Indexed answers on a real pipeline snapshot are byte-identical to
/// the linear-scan reference — the serving-layer acceptance check at
/// test scale (the Medium-scale speedup assertion lives in the
/// `serve_load` bench).
#[test]
fn indexed_lookups_match_linear_scan_on_pipeline_output() {
    let seed = 4242u64;
    let eco = Ecosystem::generate(Scale::Tiny.config(seed));
    let p = run_pipeline(&eco, seed);
    let index = mlpeer::index::LinkIndex::build(&p.links, &p.observations);
    for asn in p.links.distinct_asns() {
        let fast = index.member_links_owned(asn);
        let slow = mlpeer::index::scan::member_links(&p.links, asn);
        assert_eq!(
            format!("{fast:?}"),
            format!("{slow:?}"),
            "AS{}",
            asn.value()
        );
    }
    let mut checked = 0;
    for (prefix, _, _) in mlpeer::index::scan::announcements(&p.links, &p.observations) {
        for q in [
            Some(prefix),
            prefix.parent(),
            prefix.split().map(|(l, _)| l),
        ]
        .into_iter()
        .flatten()
        {
            let fast = index.prefix_matches(&q);
            let slow = mlpeer::index::scan::prefix_matches(&p.links, &p.observations, &q);
            assert_eq!(format!("{fast:?}"), format!("{slow:?}"), "{q}");
            checked += 1;
        }
        if checked > 300 {
            break;
        }
    }
    assert!(
        checked > 10,
        "the pipeline must announce enough prefixes to test"
    );
}
