//! Golden-corpus conformance suite for the IRR/RPKI cross-validation
//! subsystem.
//!
//! The committed fixture (`tests/golden/validate_golden.txt`) pins,
//! per `(scale, seed)`: the derived corpus's byte length and FxHash
//! (byte-exactness without a multi-hundred-kilobyte blob in the tree),
//! the parsed object/ROA tallies, and the full verdict breakdown of
//! the report `/v1/validate` serves. Any drift in the generator, the
//! parser, the scoring ladder, or the pipeline feeding them shows up
//! here as a diff against the fixture — deliberate changes regenerate
//! it with `MLPEER_REGEN_GOLDEN=1 cargo test --test validate_golden`.
//!
//! The second half of the contract: the report is a pure function of
//! `(eco, links, observations)`, so the serial, thread-sharded, and
//! multi-process harvests must all produce the identical
//! `ValidationReport` — the same equivalence the content ETag already
//! pins for the link set, extended to validation.

use std::collections::BTreeMap;
use std::hash::Hasher;

use mlpeer::hash::FxHasher;
use mlpeer::passive::{harvest_passive, PassiveConfig};
use mlpeer::validate::cross::{derive_corpus, validate_harvest, CorpusConfig};
use mlpeer_bench::{run_pipeline, run_pipeline_with, Scale};
use mlpeer_dist::{default_worker_cmd, DistConfig, DistStats};
use mlpeer_ixp::Ecosystem;
use mlpeer_serve::Snapshot;

const GOLDEN: &str = include_str!("golden/validate_golden.txt");

/// The `(scale, seed)` grid the fixture pins.
const GRID: [(Scale, u64); 3] = [
    (Scale::Tiny, 7),
    (Scale::Tiny, 42),
    (Scale::Small, 20130501),
];

fn fxhash16(bytes: &[u8]) -> String {
    let mut h = FxHasher::default();
    h.write(bytes);
    format!("{:016x}", h.finish())
}

/// Compute the actual fixture line for one `(scale, seed)` cell — the
/// exact corpus and the exact report the serving path publishes.
fn record_line(scale: Scale, seed: u64) -> String {
    let eco = Ecosystem::generate(scale.config(seed));
    let text = derive_corpus(&eco, &CorpusConfig::seeded(seed));
    let snap = Snapshot::of_pipeline(&eco, scale, seed);
    let v = &snap.validation;
    let reasons = v
        .reasons
        .iter()
        .map(|(r, n)| format!("{}:{n}", r.code()))
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{} {seed} {} {} {} {} {} {} {} {} {} {reasons}",
        scale.word(),
        text.len(),
        fxhash16(text.as_bytes()),
        v.corpus.objects,
        v.corpus.roas,
        v.corpus.quarantined,
        v.corpus.complete,
        v.totals.confirmed,
        v.totals.unknown,
        v.totals.contradicted,
    )
}

#[test]
fn golden_corpus_and_verdicts_are_byte_exact() {
    let actual: Vec<String> = GRID
        .iter()
        .map(|&(scale, seed)| record_line(scale, seed))
        .collect();
    if std::env::var("MLPEER_REGEN_GOLDEN").is_ok() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/golden/validate_golden.txt"
        );
        let mut out = String::from(
            "# scale seed corpus_bytes corpus_fxhash objects roas quarantined \
             complete confirmed unknown contradicted reasons\n",
        );
        for line in &actual {
            out.push_str(line);
            out.push('\n');
        }
        std::fs::write(path, out).expect("write golden fixture");
        eprintln!("regenerated {path}");
    }
    let committed: Vec<&str> = GOLDEN
        .lines()
        .filter(|l| !l.starts_with('#') && !l.trim().is_empty())
        .collect();
    assert_eq!(
        committed.len(),
        actual.len(),
        "fixture must cover the whole grid"
    );
    for (want, got) in committed.iter().zip(&actual) {
        assert_eq!(
            want, got,
            "golden mismatch — if the change is deliberate, regenerate with \
             MLPEER_REGEN_GOLDEN=1 cargo test --test validate_golden"
        );
    }
}

#[test]
fn report_identical_across_serial_sharded_and_dist_harvests() {
    let (scale, seed) = (Scale::Tiny, 7u64);
    let eco = Ecosystem::generate(scale.config(seed));
    let cfg = CorpusConfig::seeded(seed);

    // Serial: the plain single-threaded passive stage.
    let serial = run_pipeline_with(&eco, seed, |prep| {
        let mut sink = Default::default();
        let stats = harvest_passive(
            &prep.passive,
            &prep.dict,
            &prep.conn,
            &prep.rels,
            &PassiveConfig::default(),
            &mut sink,
        );
        (sink, stats)
    });
    let serial_report = validate_harvest(&eco, &serial.links, &serial.observations, &cfg);

    // Thread-sharded: what `Snapshot::of_pipeline` runs.
    let sharded = run_pipeline(&eco, seed);
    let sharded_report = validate_harvest(&eco, &sharded.links, &sharded.observations, &cfg);
    assert_eq!(
        serial_report, sharded_report,
        "sharded harvest must validate identically to serial"
    );

    // Multi-process: worker binaries, as `--workers=N` serves it. The
    // snapshot carries the report, so compare end to end.
    let serial_snap = Snapshot::of_pipeline(&eco, scale, seed);
    assert_eq!(serial_snap.validation, serial_report);
    let dist_cfg = DistConfig {
        workers: 2,
        worker_cmd: Some(
            default_worker_cmd().expect("mlpeer-dist-worker binary built alongside tests"),
        ),
        ..DistConfig::new(2)
    };
    let stats = DistStats::new(2);
    let dist_snap = Snapshot::of_pipeline_dist(&eco, scale, seed, &dist_cfg, &stats);
    assert_eq!(
        dist_snap.validation, serial_snap.validation,
        "dist harvest must validate identically to serial"
    );
    assert_eq!(dist_snap.etag, serial_snap.etag);
}

#[test]
fn fixture_reasons_partition_the_totals() {
    // The committed breakdowns must be internally consistent — a
    // corrupted fixture should fail loudly, not silently pass the
    // byte-exact test against equally corrupted output.
    for line in GOLDEN
        .lines()
        .filter(|l| !l.starts_with('#') && !l.trim().is_empty())
    {
        let fields: Vec<&str> = line.split_whitespace().collect();
        assert_eq!(fields.len(), 12, "malformed fixture line: {line}");
        let confirmed: u64 = fields[8].parse().unwrap();
        let unknown: u64 = fields[9].parse().unwrap();
        let contradicted: u64 = fields[10].parse().unwrap();
        let reasons: BTreeMap<&str, u64> = fields[11]
            .split(',')
            .map(|kv| {
                let (code, n) = kv.split_once(':').expect("code:count");
                (code, n.parse().unwrap())
            })
            .collect();
        assert_eq!(
            reasons.values().sum::<u64>(),
            confirmed + unknown + contradicted,
            "reason tallies must partition the verdict totals: {line}"
        );
    }
}
