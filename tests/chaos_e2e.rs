//! Chaos end-to-end suite: activate failpoints across the store, dist
//! and serve layers and assert the degradation contract — the server
//! keeps answering **byte-identical** reads while a fault is firing,
//! `/readyz` truthfully names each degraded reason, and clearing the
//! failpoint returns the system to `ready` without a restart.
//!
//! Failpoints are process-global, so every test serializes on one
//! mutex and tears the registry down on entry and exit.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use mlpeer_bench::Scale;
use mlpeer_data::churn::ChurnConfig;
use mlpeer_dist::{default_worker_cmd, DistConfig, DistStats};
use mlpeer_ixp::{Ecosystem, EcosystemConfig};
use mlpeer_serve::{
    bootstrap, spawn_live_refresher, DurableStore, LiveConfig, LiveStats, Snapshot, SnapshotStore,
};

/// One registry, one test at a time. A poisoned guard (a failed test)
/// must not cascade, so the lock is recovered rather than unwrapped.
static CHAOS: Mutex<()> = Mutex::new(());

fn chaos_guard() -> MutexGuard<'static, ()> {
    let guard = CHAOS.lock().unwrap_or_else(|p| p.into_inner());
    failpoints::teardown();
    guard
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mlpeer-chaos-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Poll a condition until it holds (or panic at the deadline).
fn wait_for(what: &str, deadline: Duration, mut cond: impl FnMut() -> bool) {
    let until = Instant::now() + deadline;
    while !cond() {
        assert!(Instant::now() < until, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Store-layer append failures trip the serve-side durability breaker
/// after three consecutive publishes; memory-path reads stay
/// byte-identical to a fault-free store throughout, `/readyz` names
/// `durable-append`, and once the fault clears the recovery probe
/// persists the pending epoch and closes the breaker — no restart.
#[test]
fn store_append_failure_degrades_then_probe_recovers() {
    let _guard = chaos_guard();
    let seed = 20130501;
    let eco = Ecosystem::generate(Scale::Tiny.config(seed));
    // The pipeline is deterministic in (scale, seed): every build is
    // byte-identical, which is what makes the faulty/clean comparison
    // meaningful.
    let build = || Snapshot::of_pipeline(&eco, Scale::Tiny, seed);

    let dir = temp_dir("breaker");
    let durable = Arc::new(DurableStore::open(&dir).unwrap());
    let faulty = SnapshotStore::new(build());
    faulty.attach_durable(Arc::clone(&durable)).unwrap();
    let clean = SnapshotStore::new(build());

    failpoints::cfg("store::append", "return(chaos: disk gone)").unwrap();
    for _ in 0..3 {
        faulty.publish(build());
        clean.publish(build());
    }
    let health = faulty.health();
    assert!(health.durable_breaker_open(), "3 failures trip the breaker");
    assert_eq!(health.status(), "degraded");
    assert_eq!(health.reasons(), vec!["durable-append"]);
    assert!(failpoints::hits("store::append") >= 3);

    // The memory path never noticed: same epoch, same content ETag,
    // byte-identical snapshot-addressed renders as the fault-free run.
    let (f, c) = (faulty.load(), clean.load());
    assert_eq!(f.epoch, c.epoch);
    assert_eq!(f.etag, c.etag, "ETag must not move under store faults");
    let req = mlpeer_serve::http::Request {
        method: "GET".into(),
        path: "/v1/ixps".into(),
        ..Default::default()
    };
    let stats = mlpeer_serve::ServerStats::default();
    let render = |store: &SnapshotStore, snap: &Arc<Snapshot>| {
        mlpeer_serve::api::route(
            &req,
            snap,
            &stats,
            store.changes(),
            None,
            None,
            None,
            None,
            Some(store.health().as_ref()),
        )
        .body
        .as_slice()
        .to_vec()
    };
    assert_eq!(
        render(&faulty, &f),
        render(&clean, &c),
        "reads are byte-identical while the breaker is open"
    );

    // Clear the fault: the probe (50 ms → 2 s backoff) lands the
    // pending epoch and closes the breaker without another publish.
    failpoints::remove("store::append");
    wait_for("durability probe recovery", Duration::from_secs(10), || {
        !faulty.health().durable_breaker_open()
    });
    wait_for("log catches up", Duration::from_secs(10), || {
        durable.latest_epoch() == Some(faulty.load().epoch)
    });
    assert_eq!(faulty.health().status(), "ready");
    assert!(faulty.health().durable_recoveries() >= 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A boot-time attach whose catch-up append fails must not abort the
/// process: availability wins. The breaker opens immediately (there is
/// no append history to smooth over), reads serve from memory, and the
/// recovery probe lands the boot epoch once the disk answers.
#[test]
fn boot_attach_failure_degrades_and_probe_lands_epoch_zero() {
    let _guard = chaos_guard();
    let seed = 20130501;
    let eco = Ecosystem::generate(Scale::Tiny.config(seed));
    let dir = temp_dir("boot-attach");
    let durable = Arc::new(DurableStore::open(&dir).unwrap());
    let store = SnapshotStore::new(Snapshot::of_pipeline(&eco, Scale::Tiny, seed));

    failpoints::cfg("store::append", "return(chaos: disk gone)").unwrap();
    store
        .attach_durable(Arc::clone(&durable))
        .expect("attach survives a failing disk");
    assert!(
        store.health().durable_breaker_open(),
        "breaker opens at boot"
    );
    assert_eq!(store.health().status(), "degraded");
    assert_eq!(store.health().reasons(), vec!["durable-append"]);
    assert!(durable.latest_epoch().is_none(), "nothing landed yet");

    failpoints::remove("store::append");
    wait_for(
        "probe lands the boot epoch",
        Duration::from_secs(10),
        || durable.latest_epoch() == Some(store.load().epoch),
    );
    wait_for("breaker closes", Duration::from_secs(10), || {
        store.health().status() == "ready"
    });
    assert!(store.health().durable_recoveries() >= 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// An fsync failpoint surfaces as an error from the explicit sync path
/// (what the drain sequence calls) and clears with the failpoint.
#[test]
fn fsync_failpoint_fails_explicit_sync_then_clears() {
    let _guard = chaos_guard();
    let dir = temp_dir("fsync");
    let durable = DurableStore::open(&dir).unwrap();
    failpoints::cfg("store::fsync", "return(chaos: EIO)").unwrap();
    let err = durable.sync().expect_err("injected fsync failure");
    assert!(err.to_string().contains("chaos: EIO"), "{err}");
    failpoints::remove("store::fsync");
    durable.sync().expect("sync succeeds once the fault clears");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A panicking live tick is caught and restarted with backoff: the
/// restart counter moves, `/readyz` reports `live-refresher`, and once
/// the failpoint clears the loop publishes again and health returns to
/// `ready` — the same thread, never respawned externally.
#[test]
fn refresher_panic_restarts_with_backoff_and_recovers() {
    let _guard = chaos_guard();
    let eco = Ecosystem::generate(EcosystemConfig::tiny(77));
    let (inferencer, snapshot) = bootstrap(&eco, "tiny", 77);
    let store = SnapshotStore::new(snapshot);
    let shutdown = Arc::new(AtomicBool::new(false));
    let stats = Arc::new(LiveStats::default());

    failpoints::cfg("serve::live_tick", "panic(chaos tick)").unwrap();
    let refresher = spawn_live_refresher(
        Arc::clone(&store),
        eco,
        inferencer,
        LiveConfig {
            interval: Duration::from_millis(10),
            events_per_tick: 25,
            churn: ChurnConfig {
                seed: 3,
                ..ChurnConfig::default()
            },
            scale: "tiny".into(),
            seed: 77,
        },
        Arc::clone(&stats),
        Arc::clone(&shutdown),
    );
    wait_for("two supervised restarts", Duration::from_secs(10), || {
        stats.restarts.load(Ordering::Relaxed) >= 2
    });
    assert_eq!(store.health().status(), "degraded");
    assert_eq!(store.health().reasons(), vec!["live-refresher"]);
    let stale_epoch = store.load().epoch;

    failpoints::remove("serve::live_tick");
    wait_for("publishes resume", Duration::from_secs(15), || {
        store.load().epoch > stale_epoch
    });
    wait_for("health clears", Duration::from_secs(15), || {
        store.health().status() == "ready"
    });
    shutdown.store(true, Ordering::Relaxed);
    refresher.join().unwrap();
}

/// Worker spawn failures degrade the distributed harvest to in-process
/// execution — counted, and byte-identical to the serial pipeline.
#[test]
fn worker_spawn_failure_degrades_but_keeps_etag() {
    let _guard = chaos_guard();
    let seed = 20130501;
    let eco = Ecosystem::generate(Scale::Tiny.config(seed));
    let serial = Snapshot::of_pipeline(&eco, Scale::Tiny, seed);

    failpoints::cfg("dist::worker_spawn", "return").unwrap();
    let cfg = DistConfig {
        worker_cmd: Some(default_worker_cmd().expect("worker binary is built alongside the tests")),
        ..DistConfig::new(2)
    };
    let stats = DistStats::new(2);
    let dist = Snapshot::of_pipeline_dist(&eco, Scale::Tiny, seed, &cfg, &stats);
    let snap = stats.snapshot();
    assert!(snap.degraded >= 1, "spawn failures must degrade: {snap:?}");
    assert_eq!(dist.etag, serial.etag, "degraded run stays byte-identical");
    assert_eq!(dist.links, serial.links);
    assert_eq!(dist.passive_stats, serial.passive_stats);
    failpoints::remove("dist::worker_spawn");
}
