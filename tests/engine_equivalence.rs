//! Engine equivalence: the threaded server and the epoll reactor must
//! be indistinguishable on the wire.
//!
//! Two stores are built from identical inputs (snapshots are
//! deterministic, so their content and ETags agree bit for bit), one
//! served by each engine, and a corpus covering every endpoint —
//! success, revalidation, all error classes, `/v1/changes` in delta
//! and 410-resync states, and a malformed request — is replayed
//! against both. Responses are compared as **raw bytes** (neither
//! engine emits a `Date` header, so byte equality is well-defined);
//! only `/healthz` and `/v1/stats` are masked down to the status line,
//! since their bodies carry live counters and uptime.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use mlpeer::live::LinkDelta;
use mlpeer_bench::Scale;
use mlpeer_bgp::Asn;
use mlpeer_ixp::ixp::IxpId;
use mlpeer_ixp::Ecosystem;
use mlpeer_serve::{spawn_reactor, spawn_server, ReactorConfig, Snapshot, SnapshotStore};

/// Send raw request bytes on a fresh connection and read to EOF.
fn exchange(addr: SocketAddr, raw: &[u8]) -> Vec<u8> {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(raw).unwrap();
    let mut out = Vec::new();
    s.read_to_end(&mut out).unwrap();
    out
}

fn get(path: &str, extra: &str) -> Vec<u8> {
    format!("GET {path} HTTP/1.1\r\nHost: eq\r\n{extra}Connection: close\r\n\r\n").into_bytes()
}

/// The first CRLF-terminated line of a raw response.
fn status_line(raw: &[u8]) -> &[u8] {
    let end = raw
        .windows(2)
        .position(|w| w == b"\r\n")
        .unwrap_or(raw.len());
    &raw[..end]
}

#[test]
fn threaded_and_reactor_engines_serve_identical_bytes() {
    let seed = 20130501u64;
    let build = || {
        let eco = Ecosystem::generate(Scale::Tiny.config(seed));
        Snapshot::of_pipeline(&eco, Scale::Tiny, seed)
    };
    // One store per engine, identical content (and publish history
    // below), so observable state matches at every step.
    let store_threaded = SnapshotStore::with_change_capacity(build(), 1);
    let store_reactor = SnapshotStore::with_change_capacity(build(), 1);
    let snap = store_threaded.load();
    assert_eq!(snap.etag, store_reactor.load().etag, "identical fixtures");
    let member = *snap
        .links
        .unique_links()
        .iter()
        .next()
        .map(|(a, _)| a)
        .unwrap();
    let etag = snap.etag.clone();

    let mut threaded = spawn_server(Arc::clone(&store_threaded), "127.0.0.1:0", 3).unwrap();
    let mut reactor = spawn_reactor(
        Arc::clone(&store_reactor),
        "127.0.0.1:0",
        ReactorConfig::default(),
    )
    .unwrap();

    let inm = format!("If-None-Match: \"{etag}\"\r\n");
    let member_path = format!("/v1/member/{}", member.value());
    let mut corpus: Vec<(String, Vec<u8>, bool)> = vec![
        // (label, raw request, masked-to-status-line?)
        ("healthz".into(), get("/healthz", ""), true),
        ("stats".into(), get("/v1/stats", ""), true),
        ("ixps".into(), get("/v1/ixps", ""), false),
        ("ixp links".into(), get("/v1/ixp/0/links", ""), false),
        ("member".into(), get(&member_path, ""), false),
        (
            "prefix exact".into(),
            get("/v1/prefix/10.0.0.0/8", ""),
            false,
        ),
        ("member 404".into(), get("/v1/member/64999", ""), false),
        ("unknown path".into(), get("/bogus", ""), false),
        ("ixp 404".into(), get("/v1/ixp/99/links", ""), false),
        (
            "method 405".into(),
            b"POST /v1/ixps HTTP/1.1\r\nHost: eq\r\nConnection: close\r\n\r\n".to_vec(),
            false,
        ),
        ("revalidate 304".into(), get("/v1/ixps", &inm), false),
        (
            "changes current".into(),
            get("/v1/changes?since=0", ""),
            false,
        ),
        (
            "changes bad since".into(),
            get("/v1/changes?since=banana", ""),
            false,
        ),
        (
            "changes future since".into(),
            get("/v1/changes?since=99", ""),
            false,
        ),
        (
            "changes missing since".into(),
            get("/v1/changes", ""),
            false,
        ),
        (
            "malformed head".into(),
            b"THIS IS NOT HTTP\r\n\r\n".to_vec(),
            false,
        ),
    ];
    let compare = |label: &str, req: &[u8], masked: bool| {
        let a = exchange(threaded.addr, req);
        let b = exchange(reactor.addr, req);
        if masked {
            assert_eq!(
                status_line(&a),
                status_line(&b),
                "{label}: status lines differ"
            );
        } else {
            assert_eq!(
                String::from_utf8_lossy(&a),
                String::from_utf8_lossy(&b),
                "{label}: raw bytes differ"
            );
            assert!(!a.is_empty(), "{label}: empty response");
        }
    };
    for (label, req, masked) in &corpus {
        compare(label, req, *masked);
    }

    // Publish the same delta-carrying epoch to both stores and compare
    // the /v1/changes delta answer.
    let delta = LinkDelta {
        added: vec![(IxpId(0), Asn(64901), Asn(64902))],
        removed: vec![],
    };
    store_threaded.publish_with_delta(build(), delta.clone());
    store_reactor.publish_with_delta(build(), delta);
    corpus.clear();
    corpus.push((
        "changes delta".into(),
        get("/v1/changes?since=0", ""),
        false,
    ));
    // A second delta publish overflows the depth-1 ring: since=0 now
    // answers 410 + resync on both engines.
    store_threaded.publish_with_delta(build(), LinkDelta::default());
    store_reactor.publish_with_delta(build(), LinkDelta::default());
    corpus.push((
        "changes 410 resync".into(),
        get("/v1/changes?since=0", ""),
        false,
    ));
    corpus.push(("ixps after publishes".into(), get("/v1/ixps", ""), false));
    for (label, req, masked) in &corpus {
        compare(label, req, *masked);
    }

    threaded.stop();
    reactor.stop();
}
