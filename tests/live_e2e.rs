//! End-to-end live mode: boot the live stack on a tiny ecosystem, let
//! churn publish a few epochs, and follow `/v1/changes` over real HTTP
//! like a delta-syncing client would — checking a recent diff is
//! consistent with the served link state, that an up-to-date `since`
//! answers an empty diff, and that stale/malformed `since` values draw
//! the documented 410 full-resync signal and 400 errors.
//!
//! (The vendored `serde_json` has no deserializer, so bodies are
//! checked with string scanning over the deterministic pretty JSON.)

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use mlpeer_data::churn::ChurnConfig;
use mlpeer_ixp::{Ecosystem, EcosystemConfig};
use mlpeer_serve::{
    bootstrap, spawn_live_refresher, spawn_server, LiveConfig, LiveStats, SnapshotStore,
};

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).unwrap();
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        if line == "\r\n" || line.is_empty() {
            break;
        }
    }
    let mut body = String::new();
    reader.read_to_string(&mut body).unwrap();
    (status, body)
}

/// The integer value of `"key": N` in a rendered JSON body.
fn field_u64(body: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\": ");
    let at = body.find(&needle)? + needle.len();
    let digits: String = body[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// The bracketed array following `"key": [`, including nesting.
fn array_of<'a>(body: &'a str, key: &str) -> &'a str {
    let needle = format!("\"{key}\": [");
    let start = body.find(&needle).map(|i| i + needle.len() - 1).unwrap();
    let bytes = body.as_bytes();
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate().skip(start) {
        match b {
            b'[' => depth += 1,
            b']' => {
                depth -= 1;
                if depth == 0 {
                    return &body[start..=i];
                }
            }
            _ => {}
        }
    }
    panic!("unterminated array for {key}");
}

/// Every `{ixp, a, b}` triple in a `/v1/changes` added/removed array.
fn change_triples(array: &str) -> Vec<(u64, u64, u64)> {
    array
        .split('{')
        .skip(1)
        .map(|obj| {
            (
                field_u64(obj, "ixp").expect("ixp"),
                field_u64(obj, "a").expect("a"),
                field_u64(obj, "b").expect("b"),
            )
        })
        .collect()
}

/// All integers of a `links: [[a, b], …]` array, paired in order.
fn link_pairs(array: &str) -> Vec<(u64, u64)> {
    let mut nums = Vec::new();
    let mut cur = String::new();
    for c in array.chars() {
        if c.is_ascii_digit() {
            cur.push(c);
        } else if !cur.is_empty() {
            nums.push(cur.parse::<u64>().unwrap());
            cur.clear();
        }
    }
    nums.chunks_exact(2).map(|c| (c[0], c[1])).collect()
}

#[test]
fn live_stack_serves_composable_deltas_and_resync_signal() {
    let eco = Ecosystem::generate(EcosystemConfig::tiny(77));
    let n_ixps = eco.ixps.len();
    let (inferencer, snapshot) = bootstrap(&eco, "tiny", 77);
    // A deliberately shallow ring so the truncation path is reachable.
    let store = SnapshotStore::with_change_capacity(snapshot, 4);
    let shutdown = Arc::new(AtomicBool::new(false));
    let stats = Arc::new(LiveStats::default());
    let refresher = spawn_live_refresher(
        Arc::clone(&store),
        eco,
        inferencer,
        LiveConfig {
            interval: Duration::from_millis(10),
            events_per_tick: 25,
            churn: ChurnConfig {
                seed: 3,
                ..ChurnConfig::default()
            },
            scale: "tiny".into(),
            seed: 77,
        },
        Arc::clone(&stats),
        Arc::clone(&shutdown),
    );
    let mut server = spawn_server(Arc::clone(&store), "127.0.0.1:0", 2).expect("bind");
    let addr = server.addr;

    // Let the live loop publish several epochs, then quiesce it so the
    // HTTP walk below sees a frozen state.
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    while store.load().epoch < 6 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    shutdown.store(true, Ordering::Relaxed);
    refresher.join().unwrap();
    let final_epoch = store.load().epoch;
    assert!(final_epoch >= 6, "live loop must publish epochs");

    // The full link state, walked over HTTP.
    let mut final_links = std::collections::BTreeSet::new();
    for id in 0..n_ixps {
        let (status, body) = get(addr, &format!("/v1/ixp/{id}/links"));
        assert_eq!(status, 200);
        for (a, b) in link_pairs(array_of(&body, "links")) {
            final_links.insert((id as u64, a, b));
        }
    }
    assert!(!final_links.is_empty());

    // Up-to-date client: empty diff, resync false.
    let (status, body) = get(addr, &format!("/v1/changes?since={final_epoch}"));
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"resync\": false"), "{body}");
    assert_eq!(field_u64(&body, "epoch"), Some(final_epoch));
    assert!(change_triples(array_of(&body, "added")).is_empty());
    assert!(change_triples(array_of(&body, "removed")).is_empty());

    // One-epoch-behind client: the diff must be consistent with the
    // final state (every added link present, every removed link gone).
    let (status, body) = get(addr, &format!("/v1/changes?since={}", final_epoch - 1));
    assert_eq!(status, 200, "{body}");
    let added = change_triples(array_of(&body, "added"));
    let removed = change_triples(array_of(&body, "removed"));
    // (The delta may legitimately be empty: an epoch can be published
    // for prefix/policy changes that moved no link.)
    for l in &added {
        assert!(final_links.contains(l), "added {l:?} missing from state");
    }
    for l in &removed {
        assert!(!final_links.contains(l), "removed {l:?} still in state");
    }

    // A client older than the 4-deep ring: 410 + the resync signal.
    let (status, body) = get(addr, "/v1/changes?since=0");
    assert_eq!(status, 410, "{body}");
    assert!(body.contains("\"resync\": true"), "{body}");
    assert!(body.contains("\"oldest_since\""), "{body}");

    // Malformed / future / missing since.
    for q in ["since=banana", &format!("since={}", final_epoch + 10), ""] {
        let path = if q.is_empty() {
            "/v1/changes".to_string()
        } else {
            format!("/v1/changes?{q}")
        };
        let (status, body) = get(addr, &path);
        assert_eq!(status, 400, "{path}: {body}");
    }

    server.stop();
}
