//! Cross-crate integration tests: the full pipeline against ground
//! truth, the paper-shape invariants, the serial/sharded equivalence
//! contract, and the failure-injection cases.

use std::collections::BTreeSet;

use mlpeer::analysis;
use mlpeer::connectivity::gather_connectivity;
use mlpeer::dict::dictionary_from_connectivity;
use mlpeer::infer::LinkInferencer;
use mlpeer::passive::{harvest_passive, harvest_passive_sharded, PassiveConfig};
use mlpeer::validate::{validate_links, ValidationConfig};
use mlpeer::Observation;
use mlpeer_bench::run_pipeline;
use mlpeer_bgp::Asn;
use mlpeer_data::collector::{build_passive, CollectorConfig};
use mlpeer_data::geo::GeoDb;
use mlpeer_data::irr::{build_irr, IrrConfig};
use mlpeer_data::lg::{build_lg_roster, LgTarget, LookingGlassHost};
use mlpeer_data::Sim;
use mlpeer_ixp::{Ecosystem, EcosystemConfig, PeeringPolicy};
use mlpeer_topo::infer::{infer_relationships, InferConfig};

fn tiny_eco(seed: u64) -> Ecosystem {
    Ecosystem::generate(EcosystemConfig::tiny(seed))
}

#[test]
fn inference_is_sound_and_nearly_complete() {
    let eco = tiny_eco(1001);
    let p = run_pipeline(&eco, 1001);
    let truth = eco.all_ground_truth_links();
    let mutual = eco.all_mutual_links();
    let got = p.links.unique_links();
    // Soundness: no false links (the §4.4 conservativeness).
    for l in &got {
        assert!(truth.contains(l), "false positive {l:?}");
    }
    // Completeness at LG-covered IXPs: nearly every mutual link found.
    let lg_mutual: BTreeSet<_> = eco
        .ixps
        .iter()
        .filter(|x| x.has_lg)
        .flat_map(|x| x.mutual_links())
        .collect();
    let hit = lg_mutual.iter().filter(|l| got.contains(l)).count();
    assert!(
        hit as f64 >= lg_mutual.len() as f64 * 0.95,
        "recovered {hit}/{} at LG IXPs",
        lg_mutual.len()
    );
    let _ = mutual;
}

#[test]
fn headline_shape_holds_more_links_than_public_bgp() {
    let eco = tiny_eco(1002);
    let p = run_pipeline(&eco, 1002);
    let vis = analysis::visibility(&eco, &p.links, &p.passive, &p.traceroute, &p.rels);
    // The paper's headline: the method reveals far more p2p links than
    // the public view, with small overlap.
    assert!(
        vis.mlp_links.len() as f64 > vis.public_p2p.len() as f64 * 1.5,
        "MLP {} vs public p2p {}",
        vis.mlp_links.len(),
        vis.public_p2p.len()
    );
    assert!(
        vis.invisible_frac() > 0.5,
        "invisible fraction {}",
        vis.invisible_frac()
    );
    // Traceroute overlap stays marginal (the RS-ASN artifact).
    assert!(
        vis.overlap_traceroute < vis.mlp_links.len() / 4,
        "traceroute overlap {} of {}",
        vis.overlap_traceroute,
        vis.mlp_links.len()
    );
}

#[test]
fn stub_heavy_edge_as_in_fig7() {
    let eco = tiny_eco(1003);
    let p = run_pipeline(&eco, 1003);
    let vis = analysis::visibility(&eco, &p.links, &p.passive, &p.traceroute, &p.rels);
    let deg = analysis::degrees(&eco, &p.links, &vis.public_links);
    assert!(
        deg.involves_stub_frac > 0.3,
        "stub involvement {}",
        deg.involves_stub_frac
    );
    assert!(
        deg.stub_stub_frac > 0.02,
        "stub–stub {}",
        deg.stub_stub_frac
    );
    assert!(
        deg.stub_stub_public_frac < 0.2,
        "stub–stub links are invisible: {}",
        deg.stub_stub_public_frac
    );
}

#[test]
fn validation_confirms_vast_majority() {
    let eco = tiny_eco(1004);
    let p = run_pipeline(&eco, 1004);
    let geo = GeoDb::build(&eco);
    let lgs: Vec<LookingGlassHost> = p
        .lgs
        .iter()
        .filter(|l| matches!(l.target, LgTarget::Member(_)))
        .map(|l| LookingGlassHost::new(l.name.clone(), l.target, l.display))
        .collect();
    let report = validate_links(&p.sim, &p.links, &lgs, &geo, &ValidationConfig::default());
    assert!(report.links_tested > 20);
    assert!(
        report.confirm_rate() > 0.9,
        "confirm rate {:.3} (paper: 0.984)",
        report.confirm_rate()
    );
}

#[test]
fn open_policies_dominate_rs_usage_as_in_fig9() {
    let eco = tiny_eco(1005);
    let p = run_pipeline(&eco, 1005);
    let pol = analysis::policy_participation(&eco, &p.pdb);
    let frac = |p: PeeringPolicy| {
        pol.rs_usage
            .get(&p)
            .map(|(n, r)| *r as f64 / (*n).max(1) as f64)
            .unwrap_or(0.0)
    };
    let open = frac(PeeringPolicy::Open);
    let restrictive = frac(PeeringPolicy::Restrictive);
    assert!(open > 0.7, "open RS usage {open}");
    assert!(
        open > restrictive,
        "open {open} vs restrictive {restrictive}"
    );
    assert!(pol.single_ixp_with_rs_frac() > 0.25);
}

#[test]
fn stripping_ixp_defeats_passive_inference() {
    // §5.8: a Netnod-style IXP strips communities; passive inference
    // must find nothing there while normal IXPs still work.
    let mut cfg = EcosystemConfig::tiny(1006);
    cfg.include_stripping_ixp = true;
    let eco = Ecosystem::generate(cfg);
    let p = run_pipeline(&eco, 1006);
    let netnod = eco.ixp_by_name("NETNOD-SIM").unwrap();
    let passive_there = p
        .observations
        .iter()
        .filter(|o| o.ixp == netnod.id && o.source == mlpeer::ObservationSource::Passive)
        .count();
    assert_eq!(
        passive_there, 0,
        "stripped communities must yield no passive observations"
    );
}

#[test]
fn portal_ixp_invisible_everywhere() {
    // A VIX-style portal IXP never emits communities at all: neither
    // passive nor active inference can see its filters.
    let mut cfg = EcosystemConfig::tiny(1007);
    cfg.include_portal_ixp = true;
    let eco = Ecosystem::generate(cfg);
    let p = run_pipeline(&eco, 1007);
    let vix = eco.ixp_by_name("VIX-SIM").unwrap();
    // Observations may exist (empty community sets decode to default
    // ALL via the RS LG), but no EXCLUDE/INCLUDE can ever be seen.
    for o in &p.observations {
        if o.ixp == vix.id {
            assert!(
                o.actions.is_empty(),
                "portal IXP leaked actions: {:?}",
                o.actions
            );
        }
    }
}

#[test]
fn per_ixp_links_sum_exceeds_unique_by_overlap() {
    let eco = tiny_eco(1008);
    let p = run_pipeline(&eco, 1008);
    let sum = p.links.per_ixp_total();
    let unique = p.links.unique_links().len();
    assert!(sum >= unique);
    assert!(sum - unique >= p.links.overlap_links().len());
}

/// The sharding contract at ecosystem scale: fanning the passive
/// harvest out one-shard-per-collector must reproduce the serial path
/// byte for byte — identical `MlpLinkSet` (links, covered, policies),
/// identical merged `PassiveStats`, identical observation stream in
/// collector order.
#[test]
fn sharded_passive_matches_serial_at_ecosystem_scale() {
    let eco = tiny_eco(31337);
    let sim = Sim::new(&eco);
    let irr = build_irr(&eco, &IrrConfig::default());
    let lgs = build_lg_roster(&sim, 31337 ^ 0x22, 70, 0.2);
    let conn = gather_connectivity(&sim, &lgs, &irr);
    let dict = dictionary_from_connectivity(&eco, &conn);
    let passive = build_passive(&sim, &CollectorConfig::paper_like(31337 ^ 0x33));
    assert!(
        passive.collectors.len() > 1,
        "sharding needs several collectors"
    );
    let public_paths: Vec<Vec<Asn>> = passive
        .collectors
        .iter()
        .flat_map(|(_, a)| a.rib.iter().map(|e| e.attrs.as_path.dedup_prepends()))
        .collect();
    let rels = infer_relationships(&public_paths, &InferConfig::default());
    let cfg = PassiveConfig::default();

    let mut serial: (Vec<Observation>, LinkInferencer) = Default::default();
    let serial_stats = harvest_passive(&passive, &dict, &conn, &rels, &cfg, &mut serial);
    let (sharded, sharded_stats) = harvest_passive_sharded::<(Vec<Observation>, LinkInferencer)>(
        &passive, &dict, &conn, &rels, &cfg,
    );

    assert!(
        serial_stats.observations > 0,
        "the dataset must exercise the pipeline"
    );
    assert_eq!(
        sharded_stats, serial_stats,
        "per-shard stats merge to the serial totals"
    );
    assert_eq!(sharded.0, serial.0, "observation stream in collector order");
    let serial_links = serial.1.finalize(&conn);
    let sharded_links = sharded.1.finalize(&conn);
    assert_eq!(sharded_links, serial_links, "identical MlpLinkSet");
    // Byte-identical, not just Eq: the rendered reports match too.
    assert_eq!(format!("{sharded_links:?}"), format!("{serial_links:?}"));
}

#[test]
fn deterministic_end_to_end() {
    let eco1 = tiny_eco(1009);
    let eco2 = tiny_eco(1009);
    let p1 = run_pipeline(&eco1, 1009);
    let p2 = run_pipeline(&eco2, 1009);
    assert_eq!(p1.links.unique_links(), p2.links.unique_links());
    assert_eq!(p1.observations.len(), p2.observations.len());
}
