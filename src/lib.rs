//! # `mlpeer-repro` — the reproduction harness root
//!
//! Umbrella crate of the *Inferring Multilateral Peering* (CoNEXT
//! 2013) reproduction: it hosts the repo-wide examples (`examples/`)
//! and integration tests (`tests/end_to_end.rs`, `tests/serve_e2e.rs`,
//! `tests/live_e2e.rs`, `tests/columnar_equivalence.rs`,
//! `tests/engine_equivalence.rs`, `tests/durability_e2e.rs`,
//! `tests/dist_faults.rs`) that exercise
//! the whole workspace together. The crate map, data flows, layer
//! invariants, and the columnar hot path (zero-copy
//! [`mlpeer_bgp::view::MrtBytes`] archives, interned
//! [`mlpeer::intern`] ids, the publish-time serve body cache) are
//! documented in `docs/ARCHITECTURE.md`; per-module reference docs
//! live in each crate (`cargo doc --no-deps --workspace --open`).
//!
//! The README's quickstart, as a tested example — the Figure 3
//! scenario: member A includes only B and D, everyone else is open,
//! and the reciprocal inference (§4.1) finds every link except A–C:
//!
//! ```
//! use mlpeer::connectivity::{ConnSource, ConnectivityData};
//! use mlpeer::infer::{infer_links, Observation, ObservationSource};
//! use mlpeer_bgp::Asn;
//! use mlpeer_ixp::ixp::IxpId;
//! use mlpeer_ixp::scheme::RsAction;
//!
//! let (a, b, c, d) = (Asn(1), Asn(2), Asn(3), Asn(4));
//! let mut conn = ConnectivityData::default();
//! for m in [a, b, c, d] {
//!     conn.record(IxpId(0), m, ConnSource::LookingGlass);
//! }
//! let obs = |member: Asn, prefix: &str, actions: Vec<RsAction>| Observation {
//!     ixp: IxpId(0),
//!     member,
//!     prefix: prefix.parse().unwrap(),
//!     actions,
//!     source: ObservationSource::ActiveRsLg,
//! };
//! let observations = vec![
//!     obs(a, "10.1.0.0/24", vec![
//!         RsAction::None, RsAction::Include(b), RsAction::Include(d),
//!     ]),
//!     obs(b, "10.2.0.0/24", vec![RsAction::All]),
//!     obs(c, "10.3.0.0/24", vec![]), // empty = default ALL
//!     obs(d, "10.4.0.0/24", vec![RsAction::All]),
//! ];
//! let links = infer_links(&conn, &observations);
//! let at0 = links.links_at(IxpId(0));
//! assert_eq!(at0.len(), 5);
//! assert!(!at0.contains(&(a, c)), "A blocks C (Fig. 3)");
//! ```
//!
//! And live mode's incremental counterpart: the same scenario built
//! event by event, where A's retune to open *retracts nothing and adds
//! exactly the missing A–C link*:
//!
//! ```
//! use mlpeer::live::{LiveEvent, LiveInferencer};
//! use mlpeer_bgp::Asn;
//! use mlpeer_ixp::ixp::IxpId;
//! use mlpeer_ixp::scheme::RsAction;
//!
//! let mut live = LiveInferencer::new();
//! for m in 1..=4u32 {
//!     live.apply(&LiveEvent::Join { ixp: IxpId(0), member: Asn(m) });
//! }
//! live.apply(&LiveEvent::Announce {
//!     ixp: IxpId(0), member: Asn(1), prefix: "10.1.0.0/24".parse().unwrap(),
//!     actions: vec![RsAction::None, RsAction::Include(Asn(2)), RsAction::Include(Asn(4))],
//! });
//! for m in 2..=4u32 {
//!     live.apply(&LiveEvent::Announce {
//!         ixp: IxpId(0), member: Asn(m),
//!         prefix: format!("10.{m}.0.0/24").parse().unwrap(),
//!         actions: vec![RsAction::All],
//!     });
//! }
//! assert_eq!(live.current().links_at(IxpId(0)).len(), 5);
//!
//! // A retunes to open: the delta is exactly the A–C link.
//! let delta = live.apply(&LiveEvent::Announce {
//!     ixp: IxpId(0), member: Asn(1), prefix: "10.1.0.0/24".parse().unwrap(),
//!     actions: vec![RsAction::All],
//! });
//! assert_eq!(delta.added, vec![(IxpId(0), Asn(1), Asn(3))]);
//! assert!(delta.removed.is_empty());
//! ```
