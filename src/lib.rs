//! Reproduction harness root: examples and integration tests live here.
