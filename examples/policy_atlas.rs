//! The §5.2–§5.5 policy analyses in one pass: participation by policy,
//! export-filter bimodality, peering density, and the repeller atlas.
//!
//! ```text
//! cargo run --release --example policy_atlas
//! ```

use mlpeer::analysis;
use mlpeer_bench::run_pipeline;
use mlpeer_ixp::{Ecosystem, EcosystemConfig, PeeringPolicy};

fn main() {
    let eco = Ecosystem::generate(EcosystemConfig::tiny(777));
    let p = run_pipeline(&eco, 777);

    let pol = analysis::policy_participation(&eco, &p.pdb);
    println!(
        "policy coverage: {}/{} members report a policy",
        pol.with_policy, pol.total_members
    );
    for (policy, (n, with_rs)) in &pol.rs_usage {
        println!(
            "  {policy:<12} {with_rs}/{n} connect to ≥1 route server ({:.0} %)",
            100.0 * *with_rs as f64 / (*n).max(1) as f64
        );
    }

    let filt = analysis::filter_patterns(&p.links, &p.conn, &p.pdb);
    println!("\nexport-filter openness by self-reported policy (Fig. 11):");
    for policy in [
        PeeringPolicy::Open,
        PeeringPolicy::Selective,
        PeeringPolicy::Restrictive,
    ] {
        println!(
            "  {policy:<12} mean allowed fraction {:.2}",
            filt.mean(policy)
        );
    }
    println!(
        "  bimodal pattern: {:.0} % of members allow >90 % or <10 %",
        filt.bimodal_frac() * 100.0
    );

    let den = analysis::density(&eco, &p.links);
    println!("\nRS peering density per IXP (Fig. 12):");
    for ixp in den.per_ixp.keys() {
        println!("  {:<10} {:.2}", eco.ixp(*ixp).name, den.mean(*ixp));
    }

    let rep = analysis::repellers(&eco, &p.links, &p.pdb);
    println!("\nrepellers (§5.5):");
    println!(
        "  {} EXCLUDE applications repel {} distinct ASes",
        rep.exclude_applications, rep.distinct_repelled
    );
    println!(
        "  {:.0} % of EXCLUDEs target the blocker's customer cone; {:.0} % a direct customer",
        100.0 * rep.in_customer_cone as f64 / rep.exclude_applications.max(1) as f64,
        100.0 * rep.provider_blocks_customer as f64 / rep.exclude_applications.max(1) as f64
    );
    if let Some((asn, blocks, blockers)) = rep.top_repelled {
        println!(
            "  most repelled: AS{} ({}), blocked {}× by {} ASes — each prefers its direct private peering",
            asn.value(),
            if asn == eco.google_like { "the Google-like giant" } else { "" },
            blocks,
            blockers
        );
    }
}
