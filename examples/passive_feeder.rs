//! The Figure 4 scenario at ecosystem scale: infer route-server links
//! that never appear in any AS path, purely from the RS communities
//! that leak to a collector through an RS feeder.
//!
//! ```text
//! cargo run --release --example passive_feeder
//! ```

use mlpeer::connectivity::gather_connectivity;
use mlpeer::dict::dictionary_from_connectivity;
use mlpeer::infer::LinkInferencer;
use mlpeer::passive::{harvest_passive_sharded, PassiveConfig};
use mlpeer_data::collector::{build_passive, CollectorConfig};
use mlpeer_data::irr::{build_irr, IrrConfig};
use mlpeer_data::lg::build_lg_roster;
use mlpeer_data::Sim;
use mlpeer_ixp::{Ecosystem, EcosystemConfig};
use mlpeer_topo::infer::{infer_relationships, InferConfig};

fn main() {
    let eco = Ecosystem::generate(EcosystemConfig::tiny(4242));
    let sim = Sim::new(&eco);
    let irr = build_irr(&eco, &IrrConfig::default());
    let lgs = build_lg_roster(&sim, 1, 0, 0.0);
    let conn = gather_connectivity(&sim, &lgs, &irr);
    let dict = dictionary_from_connectivity(&eco, &conn);

    println!("building Route Views / RIS archives…");
    let passive = build_passive(&sim, &CollectorConfig::paper_like(7));
    println!(
        "  {} RIB entries from {} vantage points",
        passive.rib_len(),
        passive.vps.len()
    );

    let paths: Vec<Vec<mlpeer_bgp::Asn>> = passive
        .collectors
        .iter()
        .flat_map(|(_, a)| a.rib.iter().map(|e| e.attrs.as_path.dedup_prepends()))
        .collect();
    let rels = infer_relationships(&paths, &InferConfig::default());

    // One shard per collector; observations fold straight into the
    // incremental link inferencer, never touching a materialized Vec.
    let (inferencer, stats) = harvest_passive_sharded::<LinkInferencer>(
        &passive,
        &dict,
        &conn,
        &rels,
        &PassiveConfig::default(),
    );
    println!("\npassive pipeline:");
    println!("  routes examined:    {}", stats.routes_seen);
    println!("  dropped bogon:      {}", stats.dropped_bogon);
    println!("  dropped cycles:     {}", stats.dropped_cycle);
    println!("  dropped transient:  {}", stats.dropped_transient);
    println!("  observations:       {}", stats.observations);

    let links = inferencer.finalize(&conn);
    let mlp = links.unique_links();

    // How many of these links appear in *any* archived AS path?
    let mut public = std::collections::BTreeSet::new();
    for (_, archive) in &passive.collectors {
        for e in &archive.rib {
            for (a, b) in e.attrs.as_path.links() {
                public.insert(if a < b { (a, b) } else { (b, a) });
            }
        }
    }
    let visible = mlp.iter().filter(|l| public.contains(l)).count();
    println!("\ninferred {} links from passive data alone;", mlp.len());
    println!(
        "{} of them ({:.0} %) never appear in any collector AS path — the Fig. 4 effect.",
        mlp.len() - visible,
        100.0 * (mlp.len() - visible) as f64 / mlp.len().max(1) as f64
    );
}
