//! The §4.1/§4.3 active campaign: query every IXP looking glass with
//! the optimized plan and print the query-cost economics (Eq. 1 vs
//! Eq. 2 vs the naive and exhaustive baselines).
//!
//! ```text
//! cargo run --release --example active_lg_survey
//! ```

use std::collections::BTreeSet;

use mlpeer::active::{query_rs_lg, ActiveConfig};
use mlpeer::connectivity::gather_connectivity;
use mlpeer::dict::dictionary_from_connectivity;
use mlpeer::report::Table;
use mlpeer_data::irr::{build_irr, IrrConfig};
use mlpeer_data::lg::{build_lg_roster, LgTarget};
use mlpeer_data::Sim;
use mlpeer_ixp::{Ecosystem, EcosystemConfig};

fn main() {
    let eco = Ecosystem::generate(EcosystemConfig::tiny(99));
    let sim = Sim::new(&eco);
    let irr = build_irr(&eco, &IrrConfig::default());
    let lgs = build_lg_roster(&sim, 1, 0, 0.0);
    let conn = gather_connectivity(&sim, &lgs, &irr);
    let dict = dictionary_from_connectivity(&eco, &conn);

    let mut t = Table::new([
        "IXP",
        "RS members",
        "cost c (Eq.1)",
        "naive",
        "exhaustive",
        "reduction",
        "hours@10s",
    ]);
    let mut max_cost = 0;
    for lg in &lgs {
        let LgTarget::RouteServer(id) = lg.target else {
            continue;
        };
        let ixp = eco.ixp(id);
        let mut obs = mlpeer::CountingSink::default();
        let stats = query_rs_lg(
            &sim,
            lg,
            id,
            &dict,
            &BTreeSet::new(),
            &ActiveConfig::default(),
            &mut obs,
        );
        let exhaustive = stats.summary_queries + stats.neighbor_queries + stats.full_prefix_queries;
        max_cost = max_cost.max(stats.cost());
        t.row([
            ixp.name.clone(),
            ixp.rs_member_count().to_string(),
            stats.cost().to_string(),
            (stats.summary_queries + stats.neighbor_queries + stats.naive_prefix_queries)
                .to_string(),
            exhaustive.to_string(),
            format!("{:.1}x", exhaustive as f64 / stats.cost().max(1) as f64),
            format!("{:.2}", stats.wall_clock_secs(10) as f64 / 3600.0),
        ]);
        let _ = obs;
    }
    println!("{}", t.render());
    println!(
        "querying all IXPs in parallel completes in {:.1} h at 1 query / 10 s\n\
         (the paper reports < 17 h for the same strategy at full scale)",
        max_cost as f64 * 10.0 / 3600.0
    );
}
