//! Quickstart: the Figure 2/3 worked example on a four-member route
//! server, end to end — encode export policies as RS communities, run
//! the route server, and infer the peering links back with the paper's
//! reciprocal algorithm.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::collections::BTreeSet;

use mlpeer::connectivity::{ConnSource, ConnectivityData};
use mlpeer::infer::{infer_links, Observation, ObservationSource};
use mlpeer_bgp::{AsPath, Asn};
use mlpeer_ixp::ixp::IxpId;
use mlpeer_ixp::member::{IxpMember, MemberAnnouncement};
use mlpeer_ixp::policy::ExportPolicy;
use mlpeer_ixp::route_server::RouteServer;
use mlpeer_ixp::scheme::CommunityScheme;

fn main() {
    // Four members A, B, C, D on a DE-CIX-style route server (Fig. 3).
    let scheme = CommunityScheme::decix();
    let (a, b, c, d) = (Asn(8359), Asn(8447), Asn(5410), Asn(8732));
    let mut members = Vec::new();
    for (i, asn) in [a, b, c, d].into_iter().enumerate() {
        let mut m = IxpMember::new(asn, format!("80.81.192.{}", i + 1).parse().unwrap());
        m.announcements = vec![MemberAnnouncement {
            prefix: format!("193.{}.0.0/22", 30 + i).parse().unwrap(),
            as_path: AsPath::from_seq([asn]),
        }];
        members.push(m);
    }
    // A advertises only to B and D (NONE + INCLUDE — Fig. 2a); the rest
    // are open.
    members[0].export = ExportPolicy::OnlyTo([b, d].into_iter().collect());

    println!("member export filters as RS communities:");
    for m in &members {
        let cs = RouteServer::communities_for(m, &m.announcements[0].prefix, &scheme);
        println!(
            "  AS{:<6} {}",
            m.asn.value(),
            if cs.is_empty() {
                "(none — default ALL)".into()
            } else {
                cs.to_string()
            }
        );
    }

    // What the route server delivers.
    println!("\nroute-server delivery matrix (rows announce, columns receive):");
    print!("        ");
    for to in &members {
        print!("AS{:<7}", to.asn.value());
    }
    println!();
    for from in &members {
        print!("AS{:<6}", from.asn.value());
        for to in &members {
            let delivered = from.asn != to.asn
                && RouteServer::delivers(from, to, &from.announcements[0].prefix);
            print!(
                "{:^9}",
                if from.asn == to.asn {
                    "—"
                } else if delivered {
                    "✓"
                } else {
                    "✗"
                }
            );
        }
        println!();
    }

    // Run the paper's inference from the observed communities.
    let mut conn = ConnectivityData::default();
    for m in &members {
        conn.record(IxpId(0), m.asn, ConnSource::LookingGlass);
    }
    let observations: Vec<Observation> = members
        .iter()
        .map(|m| Observation {
            ixp: IxpId(0),
            member: m.asn,
            prefix: m.announcements[0].prefix,
            actions: RouteServer::communities_for(m, &m.announcements[0].prefix, &scheme)
                .iter()
                .filter_map(|cmt| scheme.decode(cmt))
                .collect(),
            source: ObservationSource::ActiveRsLg,
        })
        .collect();
    let links = infer_links(&conn, &observations);
    println!("\ninferred multilateral peering links (reciprocal ALLOW only):");
    for (x, y) in links.links_at(IxpId(0)) {
        println!("  AS{} — AS{}", x.value(), y.value());
    }
    let missing: BTreeSet<(Asn, Asn)> = [(a.min(c), a.max(c))].into_iter().collect();
    for (x, y) in &missing {
        assert!(!links.links_at(IxpId(0)).contains(&(*x, *y)));
    }
    println!("\nnote: A–C is correctly absent — A blocks C even though C would allow A (Fig. 3).");
}
