//! The §5.1 validation campaign: confirm inferred links against member
//! looking glasses, with the all-paths vs best-path split of Fig. 8.
//!
//! ```text
//! cargo run --release --example validation_campaign
//! ```

use mlpeer::report::Table;
use mlpeer::validate::{validate_links, ValidationConfig};
use mlpeer_bench::run_pipeline;
use mlpeer_data::geo::GeoDb;
use mlpeer_data::lg::{LgDisplay, LgTarget, LookingGlassHost};
use mlpeer_ixp::{Ecosystem, EcosystemConfig};

fn main() {
    let eco = Ecosystem::generate(EcosystemConfig::tiny(555));
    println!("running inference pipeline…");
    let p = run_pipeline(&eco, 555);
    println!("inferred {} unique links", p.links.unique_links().len());

    let geo = GeoDb::build(&eco);
    let member_lgs: Vec<LookingGlassHost> = p
        .lgs
        .iter()
        .filter(|l| matches!(l.target, LgTarget::Member(_)))
        .map(|l| LookingGlassHost::new(l.name.clone(), l.target, l.display))
        .collect();
    println!(
        "validating against {} member looking glasses…",
        member_lgs.len()
    );
    let report = validate_links(
        &p.sim,
        &p.links,
        &member_lgs,
        &geo,
        &ValidationConfig::default(),
    );

    let mut t = Table::new(["IXP", "Tested", "Confirmed", "Rate"]);
    for (ixp, (tested, confirmed)) in &report.per_ixp {
        t.row([
            eco.ixp(*ixp).name.clone(),
            tested.to_string(),
            confirmed.to_string(),
            format!(
                "{:.1} %",
                100.0 * *confirmed as f64 / (*tested).max(1) as f64
            ),
        ]);
    }
    println!("{}", t.render());
    println!(
        "overall: {}/{} confirmed = {:.1} % (paper: 98.4 %)",
        report.links_confirmed,
        report.links_tested,
        report.confirm_rate() * 100.0
    );
    // The Fig. 8 split.
    let (mut all, mut best) = (Vec::new(), Vec::new());
    for lg in &report.per_lg {
        match lg.display {
            LgDisplay::AllPaths => all.push(lg.frac()),
            LgDisplay::BestOnly => best.push(lg.frac()),
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "all-paths LGs: mean {:.3} over {} hosts; best-only LGs: mean {:.3} over {} hosts",
        mean(&all),
        all.len(),
        mean(&best),
        best.len()
    );
    println!("best-path-only LGs confirm less — hidden non-best paths (Fig. 8).");
}
