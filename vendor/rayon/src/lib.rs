//! Offline stand-in for `rayon`, implementing the data-parallel subset
//! the sharded passive harvest uses: `par_iter().map(..).reduce(..)` /
//! `.collect()` over slices, built on `std::thread::scope`.
//!
//! The input is split into one contiguous chunk per worker, each worker
//! folds its chunk left-to-right, and chunk results combine in input
//! order — so a `reduce` with an associative (not necessarily
//! commutative) operator matches the serial fold, and `collect`
//! preserves input order.

#![forbid(unsafe_code)]

use std::num::NonZeroUsize;

/// Worker threads a parallel iterator will fan out across.
///
/// Defaults to the machine's available parallelism; the
/// `MLPEER_THREADS` environment variable (a positive integer)
/// overrides it, so experiment binaries and benches can pin the shard
/// fan-out below "all cores" and record reproducible thread counts.
pub fn current_num_threads() -> usize {
    if let Some(n) = env_threads() {
        return n;
    }
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// The `MLPEER_THREADS` override, if set to a positive integer.
pub fn env_threads() -> Option<usize> {
    std::env::var("MLPEER_THREADS").ok()?.parse().ok().filter(|&n| n > 0)
}

/// Conversion into a by-reference parallel iterator.
pub trait IntoParallelRefIterator<'data> {
    /// Element yielded by the iterator.
    type Item: Sync + 'data;

    /// Iterate `&self` in parallel.
    fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = T;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = T;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

/// A parallel iterator over `&[T]`.
pub struct ParIter<'data, T> {
    items: &'data [T],
}

impl<'data, T: Sync> ParIter<'data, T> {
    /// Apply `f` to every element in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'data, T, F>
    where
        F: Fn(&'data T) -> R + Sync,
        R: Send,
    {
        ParMap { items: self.items, f }
    }
}

/// A mapped parallel iterator, consumed by `reduce` or `collect`.
pub struct ParMap<'data, T, F> {
    items: &'data [T],
    f: F,
}

impl<'data, T, R, F> ParMap<'data, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'data T) -> R + Sync,
{
    /// Fold all mapped values with `op`, starting each chunk from
    /// `identity()`. `op` must be associative; chunk results combine in
    /// input order.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> R
    where
        ID: Fn() -> R + Sync,
        OP: Fn(R, R) -> R + Sync,
    {
        let per_chunk = self.run(|mapped| mapped.reduce(|a, b| op(a, b)));
        per_chunk.into_iter().flatten().fold(identity(), |a, b| op(a, b))
    }

    /// Collect mapped values, preserving input order.
    pub fn collect(self) -> Vec<R> {
        self.run(|mapped| mapped.collect::<Vec<R>>()).into_iter().flatten().collect()
    }

    /// Run `consume` over each chunk's mapped elements on its own
    /// thread; results come back in chunk order.
    fn run<C, O>(self, consume: C) -> Vec<O>
    where
        C: Fn(Box<dyn Iterator<Item = R> + '_>) -> O + Sync,
        O: Send,
    {
        let n = self.items.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = current_num_threads().min(n);
        let chunk_len = n.div_ceil(workers);
        let f = &self.f;
        let consume = &consume;
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .items
                .chunks(chunk_len)
                .map(|chunk| scope.spawn(move || consume(Box::new(chunk.iter().map(f)))))
                .collect();
            handles.into_iter().map(|h| h.join().expect("rayon worker panicked")).collect()
        })
    }
}

/// The import surface matching the real crate.
pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParIter, ParMap};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn reduce_matches_serial_fold_with_associative_op() {
        // String concatenation is associative but NOT commutative: the
        // parallel reduce must still preserve input order.
        let words: Vec<String> = (0..100).map(|i| format!("{i},")).collect();
        let serial: String = words.iter().map(String::as_str).collect();
        let parallel =
            words.par_iter().map(String::clone).reduce(String::new, |a, b| a + &b);
        assert_eq!(parallel, serial);
    }

    #[test]
    fn env_threads_parses_positive_integers_only() {
        // Avoid mutating the process environment (other tests run in
        // parallel); exercise the parse contract directly instead.
        assert_eq!("4".parse::<usize>().ok().filter(|&n| n > 0), Some(4));
        assert_eq!("0".parse::<usize>().ok().filter(|&n| n > 0), None);
        assert_eq!("x".parse::<usize>().ok().filter(|&n| n > 0), None);
        // Without the env var set, the override is absent and the
        // fallback is at least one thread.
        if std::env::var("MLPEER_THREADS").is_err() {
            assert_eq!(super::env_threads(), None);
        }
        assert!(super::current_num_threads() >= 1);
    }

    #[test]
    fn collect_preserves_order() {
        let v: Vec<u64> = (0..1000).collect();
        let doubled = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
        let empty: Vec<u64> = Vec::new();
        assert!(empty.par_iter().map(|x| x * 2).collect().is_empty());
    }
}
