//! An offline, `fail`-crate-style failpoint shim.
//!
//! Production code marks **named sites** with the [`failpoint!`] macro;
//! nothing happens unless a site is *activated*, either programmatically
//! ([`cfg`], the test API) or through the `MLPEER_FAILPOINTS` environment
//! variable (the ops/CI API):
//!
//! ```text
//! MLPEER_FAILPOINTS="store::append=return(disk full);serve::publish=delay(50)"
//! ```
//!
//! The spec is `;`-separated `site=action` pairs. Supported actions:
//!
//! | action | effect at the site |
//! |---|---|
//! | `off` | nothing (site stays registered but inert) |
//! | `return` / `return(msg)` | the site's error arm runs with `msg` |
//! | `panic` / `panic(msg)` | the site panics with `msg` |
//! | `delay(ms)` | the site sleeps `ms` milliseconds, then continues |
//! | `1in(n)` | deterministic sampling: the error arm runs on the 1st hit and every `n`th after |
//!
//! **Zero-cost when disabled**: an unactivated build pays one relaxed
//! atomic load per site visit (the configured-site count is zero and the
//! macro returns immediately); no locks are taken and no strings are
//! touched. The registry lock is only reached while at least one site is
//! configured — i.e. inside chaos tests and chaos CI runs.
//!
//! Two macro forms exist because sites differ in what they can do about
//! an injected error:
//!
//! ```
//! use failpoints::failpoint;
//!
//! fn append(buf: &[u8]) -> std::io::Result<()> {
//!     // Error-arm form: `return(msg)` makes this function return the
//!     // closure's value (here an injected io::Error).
//!     failpoint!("store::append", |msg: String| Err(std::io::Error::other(
//!         format!("failpoint store::append: {msg}")
//!     )));
//!     // ... the real append ...
//!     let _ = buf;
//!     Ok(())
//! }
//!
//! fn publish() {
//!     // Unit form: `panic(..)` and `delay(..)` apply; `return(..)` is
//!     // inert because the site has no error path to take.
//!     failpoint!("serve::publish");
//! }
//! # append(b"x").unwrap();
//! # publish();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// The environment variable holding the activation spec.
pub const ENV_VAR: &str = "MLPEER_FAILPOINTS";

/// One parsed failpoint action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Registered but inert.
    Off,
    /// Run the site's error arm with this message.
    Return(String),
    /// Panic at the site with this message.
    Panic(String),
    /// Sleep this many milliseconds at the site, then continue.
    Delay(u64),
    /// Deterministic sampling: error arm on the 1st hit and every `n`th
    /// after (`n <= 1` fires every hit).
    OneIn(u64),
}

impl Action {
    /// Parse one action spec (`off`, `return`, `return(msg)`, `panic`,
    /// `panic(msg)`, `delay(ms)`, `1in(n)`).
    pub fn parse(spec: &str) -> Result<Action, String> {
        let spec = spec.trim();
        let (head, arg) = match spec.split_once('(') {
            Some((head, rest)) => match rest.strip_suffix(')') {
                Some(arg) => (head.trim(), Some(arg)),
                None => return Err(format!("unclosed argument in failpoint action `{spec}`")),
            },
            None => (spec, None),
        };
        match (head, arg) {
            ("off", None) => Ok(Action::Off),
            ("return", None) => Ok(Action::Return("injected".into())),
            ("return", Some(msg)) => Ok(Action::Return(msg.to_string())),
            ("panic", None) => Ok(Action::Panic("injected".into())),
            ("panic", Some(msg)) => Ok(Action::Panic(msg.to_string())),
            ("delay", Some(ms)) => ms
                .trim()
                .parse()
                .map(Action::Delay)
                .map_err(|_| format!("delay wants milliseconds, got `{ms}`")),
            ("1in", Some(n)) => n
                .trim()
                .parse()
                .map(Action::OneIn)
                .map_err(|_| format!("1in wants a count, got `{n}`")),
            _ => Err(format!("unknown failpoint action `{spec}`")),
        }
    }
}

/// What an activated site tells the macro to do. `Delay` is handled
/// inside [`check`] (the sleep already happened by the time the macro
/// sees the result), so only the two control-flow outcomes surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Hit {
    /// Run the site's error arm with this message.
    Return(String),
    /// Panic with this message.
    Panic(String),
}

struct Site {
    action: Action,
    hits: u64,
}

/// Configured-site count: the macro fast path. Zero → every site visit
/// is one relaxed load and out.
static CONFIGURED: AtomicUsize = AtomicUsize::new(0);

static REGISTRY: OnceLock<Mutex<HashMap<String, Site>>> = OnceLock::new();
static ENV_INIT: OnceLock<()> = OnceLock::new();

fn registry() -> &'static Mutex<HashMap<String, Site>> {
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

fn ensure_env_loaded() {
    ENV_INIT.get_or_init(|| {
        if let Ok(spec) = std::env::var(ENV_VAR) {
            if let Err(err) = load_spec(&spec) {
                eprintln!("failpoints: ignoring bad {ENV_VAR} entry: {err}");
            }
        }
    });
}

/// Load a full `site=action;site=action` spec (the `MLPEER_FAILPOINTS`
/// syntax). Entries load left to right; the first malformed entry stops
/// the load and reports, earlier entries stay active.
pub fn load_spec(spec: &str) -> Result<(), String> {
    for pair in spec.split(';') {
        let pair = pair.trim();
        if pair.is_empty() {
            continue;
        }
        let (site, action) = pair
            .split_once('=')
            .ok_or_else(|| format!("expected site=action, got `{pair}`"))?;
        cfg(site.trim(), action)?;
    }
    Ok(())
}

/// Activate `site` with `action` (parsed per [`Action::parse`]).
pub fn cfg(site: &str, action: &str) -> Result<(), String> {
    let action = Action::parse(action)?;
    let mut reg = registry().lock().expect("failpoint registry poisoned");
    reg.insert(site.to_string(), Site { action, hits: 0 });
    CONFIGURED.store(reg.len(), Ordering::SeqCst);
    Ok(())
}

/// Deactivate `site` (a no-op if it was never configured).
pub fn remove(site: &str) {
    let mut reg = registry().lock().expect("failpoint registry poisoned");
    reg.remove(site);
    CONFIGURED.store(reg.len(), Ordering::SeqCst);
}

/// Deactivate every site — test teardown.
pub fn teardown() {
    let mut reg = registry().lock().expect("failpoint registry poisoned");
    reg.clear();
    CONFIGURED.store(0, Ordering::SeqCst);
}

/// How many times `site` has been evaluated since it was configured.
pub fn hits(site: &str) -> u64 {
    let reg = registry().lock().expect("failpoint registry poisoned");
    reg.get(site).map(|s| s.hits).unwrap_or(0)
}

/// Evaluate `site`: the macro's slow path. `None` means "proceed
/// normally" (unconfigured, `off`, a `delay` that already slept, or a
/// `1in(n)` hit that sampled out).
pub fn check(site: &str) -> Option<Hit> {
    ensure_env_loaded();
    if CONFIGURED.load(Ordering::Relaxed) == 0 {
        return None;
    }
    let mut reg = registry().lock().expect("failpoint registry poisoned");
    let st = reg.get_mut(site)?;
    st.hits += 1;
    match &st.action {
        Action::Off => None,
        Action::Return(msg) => Some(Hit::Return(msg.clone())),
        Action::Panic(msg) => Some(Hit::Panic(msg.clone())),
        Action::Delay(ms) => {
            let ms = *ms;
            drop(reg); // never sleep while holding the registry
            std::thread::sleep(Duration::from_millis(ms));
            None
        }
        Action::OneIn(n) => {
            let fire = *n <= 1 || (st.hits - 1) % *n == 0;
            fire.then(|| Hit::Return(format!("1in({n})")))
        }
    }
}

/// Mark a failpoint site.
///
/// `failpoint!("site")` — unit form: honors `panic(..)` and `delay(..)`;
/// `return(..)`/`1in(..)` are inert (no error path to take).
///
/// `failpoint!("site", |msg| expr)` — error-arm form: additionally, a
/// `return(msg)`/firing `1in(n)` action makes the *enclosing function*
/// return the closure's value.
#[macro_export]
macro_rules! failpoint {
    ($site:expr) => {
        if let Some(hit) = $crate::check($site) {
            if let $crate::Hit::Panic(msg) = hit {
                panic!("failpoint {}: {}", $site, msg);
            }
        }
    };
    ($site:expr, $on_return:expr) => {
        if let Some(hit) = $crate::check($site) {
            match hit {
                $crate::Hit::Panic(msg) => panic!("failpoint {}: {}", $site, msg),
                $crate::Hit::Return(msg) => {
                    #[allow(clippy::redundant_closure_call)]
                    return ($on_return)(msg);
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// The registry is process-global; tests serialize on it.
    fn guard() -> MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        let g = GATE.lock().unwrap_or_else(|p| p.into_inner());
        teardown();
        g
    }

    fn failing_append() -> std::io::Result<()> {
        failpoint!("t::append", |msg: String| Err(std::io::Error::other(msg)));
        Ok(())
    }

    #[test]
    fn actions_parse_and_reject() {
        let _g = guard();
        assert_eq!(Action::parse("off").unwrap(), Action::Off);
        assert_eq!(
            Action::parse("return(disk full)").unwrap(),
            Action::Return("disk full".into())
        );
        assert_eq!(
            Action::parse("return").unwrap(),
            Action::Return("injected".into())
        );
        assert_eq!(Action::parse("panic(x)").unwrap(), Action::Panic("x".into()));
        assert_eq!(Action::parse("delay(25)").unwrap(), Action::Delay(25));
        assert_eq!(Action::parse("1in(3)").unwrap(), Action::OneIn(3));
        for bad in ["", "boom", "delay(x)", "1in()", "return(unclosed"] {
            assert!(Action::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn unconfigured_sites_are_inert() {
        let _g = guard();
        assert!(check("t::nowhere").is_none());
        assert!(failing_append().is_ok());
    }

    #[test]
    fn return_action_takes_the_error_arm_until_removed() {
        let _g = guard();
        cfg("t::append", "return(disk full)").unwrap();
        let err = failing_append().unwrap_err();
        assert_eq!(err.to_string(), "disk full");
        assert_eq!(hits("t::append"), 1);
        remove("t::append");
        assert!(failing_append().is_ok());
    }

    #[test]
    fn one_in_samples_deterministically() {
        let _g = guard();
        cfg("t::append", "1in(3)").unwrap();
        let outcomes: Vec<bool> = (0..7).map(|_| failing_append().is_err()).collect();
        assert_eq!(
            outcomes,
            [true, false, false, true, false, false, true],
            "fires on the 1st hit and every 3rd after"
        );
        teardown();
    }

    #[test]
    fn delay_sleeps_then_continues() {
        let _g = guard();
        cfg("t::append", "delay(30)").unwrap();
        let t0 = std::time::Instant::now();
        assert!(failing_append().is_ok());
        assert!(t0.elapsed() >= Duration::from_millis(25));
        teardown();
    }

    #[test]
    #[should_panic(expected = "failpoint t::panic: boom")]
    fn panic_action_panics_with_the_message() {
        let _g = guard();
        cfg("t::panic", "panic(boom)").unwrap();
        failpoint!("t::panic");
    }

    #[test]
    fn spec_strings_load_like_the_env_var() {
        let _g = guard();
        load_spec("t::a=return(x); t::b=off ;; t::c=delay(1)").unwrap();
        assert!(matches!(check("t::a"), Some(Hit::Return(m)) if m == "x"));
        assert!(check("t::b").is_none());
        assert!(check("t::c").is_none()); // delay already slept
        assert!(load_spec("garbage").is_err());
        teardown();
    }
}
