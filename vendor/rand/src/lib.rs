//! Offline stand-in for `rand`, covering the seeded-simulation surface
//! this workspace uses: `StdRng::seed_from_u64`, `Rng::{gen, gen_bool,
//! gen_range}` and `SliceRandom::shuffle`. The generator is
//! xoshiro256** seeded through SplitMix64 — deterministic for a given
//! seed, which is all the ecosystem generators require (they never
//! promise the real crate's stream).

#![forbid(unsafe_code)]
#![allow(clippy::should_implement_trait)] // `gen` mirrors the real API name

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::sample(self) < p
    }

    /// Sample uniformly from a range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types sampleable uniformly over their natural domain ([0, 1) for
/// floats, the full integer range otherwise).
pub trait Standard {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a value can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's seeded generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice sampling helpers.
pub mod seq {
    use super::Rng;

    /// Random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10..=22);
            assert!((10..=22).contains(&v));
            let v: usize = rng.gen_range(0..5);
            assert!(v < 5);
            let f = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&f));
            let roll: f64 = rng.gen();
            assert!((0.0..1.0).contains(&roll));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle virtually never is identity");
    }
}
