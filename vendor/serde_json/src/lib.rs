//! Offline stand-in for `serde_json`: re-exports the [`Value`] / [`Map`]
//! model from the vendored `serde`, renders it as (pretty) JSON text,
//! and provides the `json!` construction macro in the object/array
//! shapes the experiment binary uses.

#![forbid(unsafe_code)]

use std::fmt;

pub use serde::{Map, Value};

/// Serialization error. The tree model cannot actually fail, but the
/// real crate's signatures are fallible, so callers `?`/`unwrap`.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("JSON serialization error")
    }
}

impl std::error::Error for Error {}

/// Convert any serializable value to a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Render as compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Render as human-readable JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

fn write_value(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // Keep integral floats visibly floats, like serde_json.
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    out.push_str(&format!("{x:.1}"));
                } else {
                    out.push_str(&x.to_string());
                }
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(s, out),
        Value::Array(items) =>
            write_seq(items.iter(), items.len(), '[', ']', indent, depth, out, |item, out| {
                write_value(item, indent, depth + 1, out);
            }),
        Value::Object(map) =>
            write_seq(map.iter(), map.len(), '{', '}', indent, depth, out, |(k, val), out| {
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, indent, depth + 1, out);
            }),
    }
}

#[allow(clippy::too_many_arguments)]
fn write_seq<T>(
    items: impl Iterator<Item = T>,
    len: usize,
    open: char,
    close: char,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
    mut write_item: impl FnMut(T, &mut String),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        write_item(item, out);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Build a [`Value`] from a JSON-shaped literal. Object values may be
/// arbitrary serializable expressions (taken by reference).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $( map.insert($key.to_string(), $crate::to_value(&$val)); )*
        $crate::Value::Object(map)
    }};
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$item) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_pretty_and_compact() {
        let v = json!({
            "name": "DE-CIX",
            "links": 54082usize,
            "frac": 0.484,
            "mix": [1usize, 2, 3],
        });
        let compact = to_string(&v).unwrap();
        assert_eq!(
            compact,
            "{\"name\":\"DE-CIX\",\"links\":54082,\"frac\":0.484,\"mix\":[1,2,3]}"
        );
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"links\": 54082"));
    }

    #[test]
    fn escapes_strings() {
        let s = to_string(&"a\"b\\c\nd").unwrap();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn integral_floats_stay_floats() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }
}
