//! Offline stand-in for `serde_derive`: a hand-rolled derive (no `syn`
//! or `quote`, which are equally unavailable offline) that generates
//! [`serde::Serialize`] impls mapping structs and enums onto the JSON
//! value model in the vendored `serde` stub. `#[derive(Deserialize)]`
//! is accepted and expands to nothing — no code path in this workspace
//! deserializes.
//!
//! Supported shapes: named/tuple/unit structs and enums with
//! unit/tuple/struct variants, with simple generics. Container and
//! field `#[serde(...)]` attributes are accepted and ignored, except
//! that single-field tuple structs always serialize transparently
//! (which subsumes the `#[serde(transparent)]` uses in this workspace).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive a `serde::Serialize` impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    generate_impl(&item).parse().expect("generated impl parses")
}

/// Accept (and discard) a `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

enum Body {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Item {
    name: String,
    /// `(lifetimes_and_params, usable_args)` rendered for the impl.
    generics: Option<(String, String)>,
    body: Body,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().expect("error tokens parse")
}

/// Split a token run on top-level commas. Groups count as one tree, so
/// `{}`/`()`/`[]` nesting is free, but generic arguments are bare
/// `<`/`>` puncts and must be depth-tracked (these are type positions,
/// so the brackets always balance).
fn split_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle_depth = 0usize;
    for t in tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1);
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                out.push(std::mem::take(&mut cur));
                continue;
            }
            _ => {}
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out.into_iter().filter(|c| !c.is_empty()).collect()
}

/// Drop leading `#[...]` attributes and a `pub` / `pub(...)` prefix.
fn strip_attrs_and_vis(tokens: &[TokenTree]) -> &[TokenTree] {
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2, // `#` + bracket group
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            _ => break,
        }
    }
    &tokens[i..]
}

/// Field name of one named-field declaration (`name: Type`).
fn field_name(decl: &[TokenTree]) -> Result<String, String> {
    match strip_attrs_and_vis(decl).first() {
        Some(TokenTree::Ident(id)) => Ok(id.to_string()),
        other => Err(format!("expected field name, found {other:?}")),
    }
}

fn parse_named_fields(group_tokens: &[TokenTree]) -> Result<Vec<String>, String> {
    split_commas(group_tokens).iter().map(|d| field_name(d)).collect()
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let rest = strip_attrs_and_vis(&tokens);
    let (kind, rest) = match rest.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" || id.to_string() == "enum" => {
            (id.to_string(), &rest[1..])
        }
        other => return Err(format!("expected struct or enum, found {other:?}")),
    };
    let (name, mut rest) = match rest.first() {
        Some(TokenTree::Ident(id)) => (id.to_string(), &rest[1..]),
        other => return Err(format!("expected type name, found {other:?}")),
    };

    // Optional generics: collect the `<...>` run, balancing nesting.
    let mut generics = None;
    if matches!(rest.first(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        let mut depth = 0usize;
        let mut end = 0usize;
        for (i, t) in rest.iter().enumerate() {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => {
                        depth -= 1;
                        if depth == 0 {
                            end = i;
                            break;
                        }
                    }
                    _ => {}
                }
            }
        }
        if end == 0 {
            return Err("unbalanced generics".into());
        }
        let inner = &rest[1..end];
        let mut params = Vec::new();
        let mut args = Vec::new();
        for param in split_commas(inner) {
            match param.first() {
                Some(TokenTree::Punct(p)) if p.as_char() == '\'' => {
                    let lt: String = param.iter().take(2).map(ToString::to_string).collect();
                    params.push(lt.clone());
                    args.push(lt);
                }
                Some(TokenTree::Ident(id)) => {
                    params.push(format!("{id}: ::serde::Serialize"));
                    args.push(id.to_string());
                }
                other => return Err(format!("unsupported generic param {other:?}")),
            }
        }
        generics = Some((params.join(", "), args.join(", ")));
        rest = &rest[end + 1..];
    }

    let body = if kind == "struct" {
        match rest.first() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let toks: Vec<TokenTree> = g.stream().into_iter().collect();
                Body::NamedStruct(parse_named_fields(&toks)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let toks: Vec<TokenTree> = g.stream().into_iter().collect();
                Body::TupleStruct(split_commas(&toks).len())
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::UnitStruct,
            None => Body::UnitStruct,
            other => return Err(format!("unsupported struct body {other:?}")),
        }
    } else {
        let group = match rest.first() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
            other => return Err(format!("expected enum body, found {other:?}")),
        };
        let toks: Vec<TokenTree> = group.stream().into_iter().collect();
        let mut variants = Vec::new();
        for decl in split_commas(&toks) {
            let decl = strip_attrs_and_vis(&decl);
            let name = match decl.first() {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => return Err(format!("expected variant name, found {other:?}")),
            };
            let fields = match decl.get(1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
                    VariantFields::Tuple(split_commas(&toks).len())
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
                    VariantFields::Named(parse_named_fields(&toks)?)
                }
                // `Variant = 3` discriminants serialize like unit variants.
                _ => VariantFields::Unit,
            };
            variants.push(Variant { name, fields });
        }
        Body::Enum(variants)
    };

    Ok(Item { name, generics, body })
}

fn generate_impl(item: &Item) -> String {
    let name = &item.name;
    let (params, args) = match &item.generics {
        Some((p, a)) => (format!("<{p}>"), format!("<{a}>")),
        None => (String::new(), String::new()),
    };
    let body = match &item.body {
        Body::NamedStruct(fields) => {
            let mut b = String::from("let mut m = ::serde::Map::new();\n");
            for f in fields {
                b.push_str(&format!(
                    "m.insert(String::from({f:?}), ::serde::Serialize::to_value(&self.{f}));\n"
                ));
            }
            b.push_str("::serde::Value::Object(m)");
            b
        }
        Body::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".into(),
        Body::TupleStruct(n) => {
            let items: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Body::UnitStruct => format!("::serde::Value::String(String::from({name:?}))"),
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    VariantFields::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::String(String::from({vname:?})),\n"
                    )),
                    VariantFields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let vals: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => {{ let mut m = ::serde::Map::new(); \
                             m.insert(String::from({vname:?}), ::serde::Value::Array(vec![{}])); \
                             ::serde::Value::Object(m) }}\n",
                            binds.join(", "),
                            vals.join(", ")
                        ));
                    }
                    VariantFields::Named(fields) => {
                        let mut inner = String::from("let mut f = ::serde::Map::new();\n");
                        for fld in fields {
                            inner.push_str(&format!(
                                "f.insert(String::from({fld:?}), ::serde::Serialize::to_value({fld}));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => {{ {inner} let mut m = ::serde::Map::new(); \
                             m.insert(String::from({vname:?}), ::serde::Value::Object(f)); \
                             ::serde::Value::Object(m) }}\n",
                            fields.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{params} ::serde::Serialize for {name}{args} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}\n"
    )
}
