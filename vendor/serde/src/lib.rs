//! Offline stand-in for `serde`, shaped around the one serialization
//! target this workspace has: JSON experiment reports. Instead of the
//! real crate's visitor-based data model, [`Serialize`] maps a value
//! directly onto the JSON [`Value`] tree that the vendored `serde_json`
//! re-exports and renders. `#[derive(Serialize, Deserialize)]` comes
//! from the vendored `serde_derive`.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

pub use serde_derive::{Deserialize, Serialize};

/// A JSON value tree (re-exported by the vendored `serde_json`).
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (kept exact so counts print without a decimal point).
    Int(i64),
    /// A float.
    Float(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

/// A JSON object preserving insertion order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Empty object.
    pub fn new() -> Self {
        Map::default()
    }

    /// Insert, replacing any existing entry with the same key. Returns
    /// the previous value if the key was present.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Look up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the object is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Consume the object, yielding owned entries in insertion order
    /// (lets canonicalizers re-order without cloning subtrees).
    pub fn into_entries(self) -> Vec<(String, Value)> {
        self.entries
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Value {
        Value::Float(x)
    }
}

impl From<Map> for Value {
    fn from(m: Map) -> Value {
        Value::Object(m)
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Value {
        Value::Array(v)
    }
}

macro_rules! impl_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Value {
                Value::Int(n as i64)
            }
        }
    )*};
}
impl_from_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Serialize by conversion to the JSON [`Value`] model.
pub trait Serialize {
    /// This value as a JSON tree.
    fn to_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for Map {
    fn to_value(&self) -> Value {
        Value::Object(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for std::net::Ipv4Addr {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

/// Maps serialize as arrays of `[key, value]` pairs: non-string keys
/// (ASNs, IXP ids) are common here and JSON objects cannot hold them.
impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter().map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()])).collect(),
        )
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter().map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()])).collect(),
        )
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}
impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_insert_replaces() {
        let mut m = Map::new();
        assert!(m.insert("a".into(), Value::Int(1)).is_none());
        assert_eq!(m.insert("a".into(), Value::Int(2)), Some(Value::Int(1)));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get("a"), Some(&Value::Int(2)));
    }

    #[test]
    fn std_impls_cover_containers() {
        let v = vec![1u32, 2, 3].to_value();
        assert_eq!(v, Value::Array(vec![Value::Int(1), Value::Int(2), Value::Int(3)]));
        let m: BTreeMap<u8, &str> = [(1, "x")].into_iter().collect();
        assert_eq!(
            m.to_value(),
            Value::Array(vec![Value::Array(vec![
                Value::Int(1),
                Value::String("x".into())
            ])])
        );
        assert_eq!(None::<u8>.to_value(), Value::Null);
        assert_eq!((1u8, "a").to_value().to_value(), (1u8, "a").to_value());
    }
}
