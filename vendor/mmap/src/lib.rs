//! Offline stand-in for a memmap2-style **read-only** file mapping.
//!
//! The build environment has no registry access, so — like the sibling
//! `polling`/`rayon` stand-ins — this crate implements exactly the
//! surface the workspace uses: map a whole file read-only with
//! [`Mmap::map`], read it as a `&[u8]` (via `Deref`), unmap on drop.
//! No writable mappings, no flushing, no partial ranges.
//!
//! All syscalls go through the C symbols the Rust standard library
//! already links (`std` links libc on every unix target), so nothing
//! here needs a registry dependency. `unsafe` is confined to this
//! crate; callers see a safe API — sound because the mapping is
//! `PROT_READ`/`MAP_PRIVATE` (writes by other processes may or may not
//! be visible, exactly memmap2's documented caveat; the epoch store
//! only maps **sealed** segments, which are never rewritten in place).
//!
//! Zero-length files are handled without a syscall: `mmap(2)` rejects
//! `len == 0`, so an empty file maps to an empty slice.

#![warn(missing_docs)]
#![cfg(unix)]

use std::fs::File;
use std::io;
use std::ops::Deref;
use std::os::fd::AsRawFd;

mod sys {
    //! The C symbols this shim calls, as `std`'s libc exports them.
    #![allow(non_camel_case_types)]

    pub use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

/// `MAP_FAILED`: `mmap` returns `(void *) -1` on error, not null.
const MAP_FAILED: *mut sys::c_void = !0usize as *mut sys::c_void;

/// A read-only memory mapping of an entire file.
///
/// Dereferences to `&[u8]`. The mapping is private (`MAP_PRIVATE`), so
/// it is a stable view of the file's bytes at map time as long as no
/// one truncates or rewrites the file in place — the epoch store
/// upholds that by only mapping sealed, append-complete segments.
pub struct Mmap {
    /// Null iff the mapping is empty (zero-length file, no syscall).
    ptr: *mut sys::c_void,
    len: usize,
}

// SAFETY: the mapping is read-only and owned; the raw pointer is only
// ever dereferenced through the `&self` slice accessor.
unsafe impl Send for Mmap {}
// SAFETY: shared access is plain `&[u8]` reads of an immutable mapping.
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Map the whole of `file` read-only. The file handle may be closed
    /// afterwards — the mapping keeps the pages alive.
    pub fn map(file: &File) -> io::Result<Mmap> {
        let len = file.metadata()?.len();
        if len > usize::MAX as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "file too large to map",
            ));
        }
        let len = len as usize;
        if len == 0 {
            return Ok(Mmap {
                ptr: std::ptr::null_mut(),
                len: 0,
            });
        }
        // SAFETY: plain syscall; the kernel validates fd and length.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == MAP_FAILED {
            return Err(io::Error::last_os_error());
        }
        Ok(Mmap { ptr, len })
    }

    /// The mapped bytes.
    pub fn as_slice(&self) -> &[u8] {
        if self.len == 0 {
            return &[];
        }
        // SAFETY: ptr/len come from a successful mmap held until drop;
        // the mapping is PROT_READ and never mutated through this type.
        unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
    }

    /// Mapped length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the mapping empty (zero-length file)?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        if !self.ptr.is_null() {
            // SAFETY: ptr/len are the exact values a successful mmap
            // returned; the mapping is unmapped exactly once.
            unsafe { sys::munmap(self.ptr, self.len) };
        }
    }
}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mmap").field("len", &self.len).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("mlpeer-mmap-{tag}-{}", std::process::id()))
    }

    #[test]
    fn maps_file_contents_byte_identical() {
        let path = temp_path("roundtrip");
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&payload)
            .unwrap();
        let file = File::open(&path).unwrap();
        let map = Mmap::map(&file).unwrap();
        drop(file); // the mapping must outlive the handle
        assert_eq!(map.len(), payload.len());
        assert_eq!(&*map, &payload[..]);
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let path = temp_path("empty");
        std::fs::File::create(&path).unwrap();
        let map = Mmap::map(&File::open(&path).unwrap()).unwrap();
        assert!(map.is_empty());
        assert_eq!(map.len(), 0);
        assert_eq!(&*map, &[] as &[u8]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mapping_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Mmap>();
    }
}
