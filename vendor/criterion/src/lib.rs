//! Offline stand-in for `criterion`: the same registration API
//! (`criterion_group!` / `criterion_main!`, `bench_function`,
//! `iter`/`iter_batched`, benchmark groups), backed by a simple
//! wall-clock harness — warm up, run timed batches for a fixed budget,
//! report the mean per iteration. No statistics engine, but the
//! numbers are real measurements and `Criterion::last_estimate_ns`
//! exposes them so benches can record results to disk.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup (accepted for API compatibility;
/// every batch here is a single routine call).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small routine output.
    SmallInput,
    /// Large routine output.
    LargeInput,
    /// One routine call per batch.
    PerIteration,
}

/// The benchmark harness.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    measure_budget: Duration,
    last_estimate_ns: Option<f64>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measure_budget: Duration::from_millis(300),
            last_estimate_ns: None,
        }
    }
}

impl Criterion {
    /// Target number of timed iterations (also a hard floor of 1).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark and print its mean time per iteration.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            sample_size: self.sample_size,
            measure_budget: self.measure_budget,
            estimate_ns: None,
        };
        f(&mut b);
        match b.estimate_ns {
            Some(ns) => {
                self.last_estimate_ns = Some(ns);
                println!("{id:<45} time: {}", format_ns(ns));
            }
            None => println!("{id:<45} (no measurement)"),
        }
        self
    }

    /// A named group of benchmarks sharing a sample-size override.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        let sample_size = self.sample_size;
        BenchmarkGroup { criterion: self, sample_size }
    }

    /// Mean ns/iteration from the most recent `bench_function`, for
    /// benches that record results to disk.
    pub fn last_estimate_ns(&self) -> Option<f64> {
        self.last_estimate_ns
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Override the timed-iteration target for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let outer = self.criterion.sample_size;
        self.criterion.sample_size = self.sample_size;
        self.criterion.bench_function(id, f);
        self.criterion.sample_size = outer;
        self
    }

    /// Finish the group (a no-op, kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure to time the routine.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    measure_budget: Duration,
    estimate_ns: Option<f64>,
}

impl Bencher {
    /// Time `routine`, called back-to-back.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        std::hint::black_box(routine()); // warm-up
        let mut iters = 0u64;
        let mut elapsed = Duration::ZERO;
        let deadline = Instant::now() + self.measure_budget;
        while iters < self.sample_size as u64 || (Instant::now() < deadline && iters < 1_000_000)
        {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            elapsed += t0.elapsed();
            iters += 1;
            if elapsed > self.measure_budget * 4 {
                break; // slow routine: settle for fewer samples
            }
        }
        self.estimate_ns = Some(elapsed.as_nanos() as f64 / iters as f64);
    }

    /// Time `routine` on fresh input from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup())); // warm-up
        let mut iters = 0u64;
        let mut elapsed = Duration::ZERO;
        let deadline = Instant::now() + self.measure_budget;
        while iters < self.sample_size as u64 || (Instant::now() < deadline && iters < 1_000_000)
        {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            elapsed += t0.elapsed();
            iters += 1;
            if elapsed > self.measure_budget * 4 {
                break;
            }
        }
        self.estimate_ns = Some(elapsed.as_nanos() as f64 / iters as f64);
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns/iter")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs/iter", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms/iter", ns / 1_000_000.0)
    } else {
        format!("{:.3} s/iter", ns / 1_000_000_000.0)
    }
}

/// Define a benchmark group function from `fn(&mut Criterion)` targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` from benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut c = Criterion::default();
        c.sample_size(5).bench_function("spin", |b| {
            b.iter(|| (0..100u64).sum::<u64>())
        });
        assert!(c.last_estimate_ns().unwrap() > 0.0);
        let mut g = c.benchmark_group("g");
        g.sample_size(3).bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
        assert!(c.last_estimate_ns().unwrap() > 0.0);
    }
}
