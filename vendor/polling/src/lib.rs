//! Offline stand-in for a mio-style readiness poller: a thin safe
//! wrapper over `epoll_create1`/`epoll_ctl`/`epoll_wait`, with a
//! portable `poll(2)` fallback backend.
//!
//! The build environment has no registry access, so — like the sibling
//! `rayon`/`serde` stand-ins — this crate implements exactly the
//! surface the workspace uses: register a file descriptor under a
//! `usize` key with read/write [`Interest`], block in [`Poller::wait`]
//! until something is ready (or a timeout passes), get back level-
//! triggered [`Event`]s. No arenas, no wakers, no edge triggering.
//!
//! All syscalls go through the C symbols the Rust standard library
//! already links (`std` links libc on every unix target), so nothing
//! here needs a registry dependency. `unsafe` is confined to this
//! crate; callers see a safe API. The [`os`] module adds the handful of
//! socket/rlimit helpers the reactor front end needs (`SO_REUSEPORT`
//! listener sharding, `SO_SNDBUF` shrinking for partial-write tests,
//! `RLIMIT_NOFILE` raising for high-connection-count load runs).
//!
//! Backend selection: Linux defaults to epoll; every other unix uses
//! `poll(2)`. [`Poller::with_backend`] forces the `poll(2)` backend on
//! Linux too, so the fallback stays tested where CI actually runs.

#![warn(missing_docs)]
#![cfg(unix)]

use std::io;
use std::os::fd::RawFd;
use std::sync::Mutex;
use std::time::Duration;

mod sys {
    //! The C symbols this shim calls, as `std`'s libc exports them.
    #![allow(non_camel_case_types)]

    pub use std::os::raw::{c_int, c_ulong, c_void};

    /// Kernel epoll event record. x86_64 is the one Linux ABI where
    /// this struct is packed; everywhere else it has natural alignment.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct epoll_event {
        pub events: u32,
        pub data: u64,
    }

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct pollfd {
        pub fd: c_int,
        pub events: i16,
        pub revents: i16,
    }

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLPRI: u32 = 0x002;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLL_CLOEXEC: c_int = 0x80000;

    pub const POLLIN: i16 = 0x001;
    pub const POLLPRI: i16 = 0x002;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;

    extern "C" {
        pub fn close(fd: c_int) -> c_int;
        pub fn poll(fds: *mut pollfd, nfds: c_ulong, timeout: c_int) -> c_int;
        #[cfg(target_os = "linux")]
        pub fn epoll_create1(flags: c_int) -> c_int;
        #[cfg(target_os = "linux")]
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut epoll_event) -> c_int;
        #[cfg(target_os = "linux")]
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut epoll_event,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn setsockopt(
            fd: c_int,
            level: c_int,
            name: c_int,
            value: *const c_void,
            len: u32,
        ) -> c_int;
        pub fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
        pub fn bind(fd: c_int, addr: *const c_void, len: u32) -> c_int;
        pub fn listen(fd: c_int, backlog: c_int) -> c_int;
        pub fn getrlimit(resource: c_int, rlim: *mut rlimit) -> c_int;
        pub fn setrlimit(resource: c_int, rlim: *const rlimit) -> c_int;
        // `sighandler_t` is a function pointer; pointer-sized integer
        // matches the ABI on every unix this shim targets.
        pub fn signal(signum: c_int, handler: usize) -> usize;
    }

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct rlimit {
        pub rlim_cur: u64,
        pub rlim_max: u64,
    }
}

/// The last `errno`, as an [`io::Error`].
fn last_error() -> io::Error {
    io::Error::last_os_error()
}

/// Which readiness the caller wants to hear about for a registration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake on readable (incoming bytes, incoming connections, EOF).
    pub readable: bool,
    /// Wake on writable (socket send buffer has room).
    pub writable: bool,
}

impl Interest {
    /// Read readiness only.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Write readiness only.
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Both directions.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness notification. Errors and hangups surface as *both*
/// readable and writable — the owner's next read/write reports the
/// concrete error, which is how mio-style loops discover them.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The key the file descriptor was registered under.
    pub key: usize,
    /// Readable (or errored/hung up).
    pub readable: bool,
    /// Writable (or errored/hung up).
    pub writable: bool,
}

/// Which kernel interface backs a [`Poller`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// `epoll` (Linux only; the default there).
    Epoll,
    /// `poll(2)` — the portable fallback, O(registrations) per wait.
    Poll,
}

enum Backend {
    #[cfg(target_os = "linux")]
    Epoll { epfd: RawFd },
    Poll { regs: Mutex<Vec<Registration>> },
}

struct Registration {
    fd: RawFd,
    key: usize,
    interest: Interest,
}

/// A level-triggered readiness poller over raw file descriptors.
///
/// Registrations are keyed by a caller-chosen `usize`; [`wait`]
/// returns the keys that are ready. The caller owns the file
/// descriptors — the poller never closes them. Intended use is one
/// waiting thread per poller (the `poll(2)` backend holds its
/// registration lock across the blocking wait).
///
/// [`wait`]: Poller::wait
pub struct Poller {
    backend: Backend,
}

impl Poller {
    /// A poller on the platform's default backend (epoll on Linux,
    /// `poll(2)` elsewhere).
    pub fn new() -> io::Result<Poller> {
        #[cfg(target_os = "linux")]
        {
            Poller::with_backend(BackendKind::Epoll)
        }
        #[cfg(not(target_os = "linux"))]
        {
            Poller::with_backend(BackendKind::Poll)
        }
    }

    /// A poller on an explicit backend. Asking for epoll off Linux is
    /// an `Unsupported` error.
    pub fn with_backend(kind: BackendKind) -> io::Result<Poller> {
        match kind {
            BackendKind::Epoll => {
                #[cfg(target_os = "linux")]
                {
                    // SAFETY: plain syscall, no pointers.
                    let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
                    if epfd < 0 {
                        return Err(last_error());
                    }
                    Ok(Poller {
                        backend: Backend::Epoll { epfd },
                    })
                }
                #[cfg(not(target_os = "linux"))]
                {
                    Err(io::Error::new(
                        io::ErrorKind::Unsupported,
                        "epoll is Linux-only; use BackendKind::Poll",
                    ))
                }
            }
            BackendKind::Poll => Ok(Poller {
                backend: Backend::Poll {
                    regs: Mutex::new(Vec::new()),
                },
            }),
        }
    }

    /// The backend this poller runs on.
    pub fn kind(&self) -> BackendKind {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { .. } => BackendKind::Epoll,
            Backend::Poll { .. } => BackendKind::Poll,
        }
    }

    /// Register `fd` under `key` with the given interest. One
    /// registration per fd; re-adding an fd is an error (use
    /// [`modify`](Poller::modify)).
    pub fn add(&self, fd: RawFd, key: usize, interest: Interest) -> io::Result<()> {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd } => epoll_ctl(*epfd, sys::EPOLL_CTL_ADD, fd, key, interest),
            Backend::Poll { regs } => {
                let mut regs = regs.lock().expect("poller lock");
                if regs.iter().any(|r| r.fd == fd) {
                    return Err(io::Error::new(
                        io::ErrorKind::AlreadyExists,
                        "fd already registered",
                    ));
                }
                regs.push(Registration { fd, key, interest });
                Ok(())
            }
        }
    }

    /// Change the interest (and key) of an already-registered fd.
    pub fn modify(&self, fd: RawFd, key: usize, interest: Interest) -> io::Result<()> {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd } => epoll_ctl(*epfd, sys::EPOLL_CTL_MOD, fd, key, interest),
            Backend::Poll { regs } => {
                let mut regs = regs.lock().expect("poller lock");
                match regs.iter_mut().find(|r| r.fd == fd) {
                    Some(r) => {
                        r.key = key;
                        r.interest = interest;
                        Ok(())
                    }
                    None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
                }
            }
        }
    }

    /// Remove an fd's registration. Call *before* closing the fd (epoll
    /// drops closed fds on its own, `poll(2)` does not).
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd } => {
                let mut ev = sys::epoll_event { events: 0, data: 0 };
                // SAFETY: valid pointers; DEL ignores the event.
                let rc = unsafe { sys::epoll_ctl(*epfd, sys::EPOLL_CTL_DEL, fd, &mut ev) };
                if rc < 0 {
                    Err(last_error())
                } else {
                    Ok(())
                }
            }
            Backend::Poll { regs } => {
                let mut regs = regs.lock().expect("poller lock");
                match regs.iter().position(|r| r.fd == fd) {
                    Some(i) => {
                        regs.swap_remove(i);
                        Ok(())
                    }
                    None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
                }
            }
        }
    }

    /// Block until at least one registered fd is ready or `timeout`
    /// passes (`None` blocks indefinitely). Ready events are *appended*
    /// to `events`; returns how many were appended (0 on timeout).
    /// Level-triggered: a ready fd keeps reporting until drained.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        let timeout_ms: sys::c_int = match timeout {
            None => -1,
            Some(d) => {
                let ms = d.as_millis();
                // Round sub-millisecond waits up so a short timeout
                // never degenerates into a busy spin.
                let ms = if ms == 0 && !d.is_zero() { 1 } else { ms };
                ms.min(i32::MAX as u128) as sys::c_int
            }
        };
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd } => {
                let mut buf = [sys::epoll_event { events: 0, data: 0 }; 256];
                // SAFETY: buf is a valid, writable array of its length.
                let n = unsafe {
                    sys::epoll_wait(*epfd, buf.as_mut_ptr(), buf.len() as sys::c_int, timeout_ms)
                };
                if n < 0 {
                    return Err(last_error());
                }
                for ev in &buf[..n as usize] {
                    let bits = ev.events;
                    let oob = bits & (sys::EPOLLERR | sys::EPOLLHUP | sys::EPOLLRDHUP) != 0;
                    // Copy out of the (possibly packed) struct first.
                    let data = ev.data;
                    events.push(Event {
                        key: data as usize,
                        readable: bits & (sys::EPOLLIN | sys::EPOLLPRI) != 0 || oob,
                        writable: bits & sys::EPOLLOUT != 0 || oob,
                    });
                }
                Ok(n as usize)
            }
            Backend::Poll { regs } => {
                let regs = regs.lock().expect("poller lock");
                let mut fds: Vec<sys::pollfd> = regs
                    .iter()
                    .map(|r| sys::pollfd {
                        fd: r.fd,
                        events: (if r.interest.readable {
                            sys::POLLIN | sys::POLLPRI
                        } else {
                            0
                        }) | (if r.interest.writable { sys::POLLOUT } else { 0 }),
                        revents: 0,
                    })
                    .collect();
                // SAFETY: fds is a valid, writable array of its length.
                let n = unsafe {
                    sys::poll(fds.as_mut_ptr(), fds.len() as sys::c_ulong, timeout_ms)
                };
                if n < 0 {
                    return Err(last_error());
                }
                let mut appended = 0;
                for (pfd, reg) in fds.iter().zip(regs.iter()) {
                    let bits = pfd.revents;
                    if bits == 0 {
                        continue;
                    }
                    let oob = bits & (sys::POLLERR | sys::POLLHUP) != 0;
                    events.push(Event {
                        key: reg.key,
                        readable: bits & (sys::POLLIN | sys::POLLPRI) != 0 || oob,
                        writable: bits & sys::POLLOUT != 0 || oob,
                    });
                    appended += 1;
                }
                Ok(appended)
            }
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        #[cfg(target_os = "linux")]
        if let Backend::Epoll { epfd } = self.backend {
            // SAFETY: epfd came from epoll_create1 and is owned here.
            unsafe { sys::close(epfd) };
        }
    }
}

impl std::fmt::Debug for Poller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Poller").field("kind", &self.kind()).finish()
    }
}

/// Termination-signal latch: an async-signal-safe SIGTERM/SIGINT
/// handler that flips one static flag, polled by the serve loop to
/// start a graceful drain. Lives here because the serve crate forbids
/// `unsafe` — all unsafe syscall surface stays in this shim.
pub mod signal {
    use super::{last_error, sys};
    use std::io;
    use std::sync::atomic::{AtomicBool, Ordering};

    const SIGINT: sys::c_int = 2;
    const SIGTERM: sys::c_int = 15;
    /// `SIG_ERR` — `signal(2)`'s failure return.
    const SIG_ERR: usize = usize::MAX;

    static TERM_REQUESTED: AtomicBool = AtomicBool::new(false);

    /// The handler body: one relaxed store is async-signal-safe (no
    /// allocation, no locks, no reentrancy hazard).
    extern "C" fn on_term(_signum: sys::c_int) {
        TERM_REQUESTED.store(true, Ordering::Relaxed);
    }

    /// Install the latch for SIGTERM and SIGINT. Call once at boot;
    /// after it, [`term_requested`] reports whether either signal has
    /// arrived.
    pub fn install_term_handler() -> io::Result<()> {
        let handler = on_term as extern "C" fn(sys::c_int) as usize;
        for sig in [SIGTERM, SIGINT] {
            // SAFETY: `on_term` is async-signal-safe and `extern "C"`;
            // `signal(2)` with a valid signum and handler pointer has
            // no other preconditions.
            if unsafe { sys::signal(sig, handler) } == SIG_ERR {
                return Err(last_error());
            }
        }
        Ok(())
    }

    /// Has SIGTERM or SIGINT arrived since
    /// [`install_term_handler`] ran?
    pub fn term_requested() -> bool {
        TERM_REQUESTED.load(Ordering::Relaxed)
    }

    /// Test hook: raise the flag exactly as the signal handler would.
    pub fn request_term() {
        TERM_REQUESTED.store(true, Ordering::Relaxed);
    }
}

/// Socket and rlimit helpers for the reactor front end (Linux only —
/// the constants below are Linux ABI values).
#[cfg(target_os = "linux")]
pub mod os {
    use super::{last_error, sys};
    use std::io;
    use std::net::{SocketAddrV4, TcpListener};
    use std::os::fd::{FromRawFd, RawFd};

    const SOL_SOCKET: sys::c_int = 1;
    const SO_REUSEADDR: sys::c_int = 2;
    const SO_SNDBUF: sys::c_int = 7;
    const SO_RCVBUF: sys::c_int = 8;
    const SO_REUSEPORT: sys::c_int = 15;
    const AF_INET: sys::c_int = 2;
    const SOCK_STREAM: sys::c_int = 1;
    const SOCK_CLOEXEC: sys::c_int = 0x80000;
    const RLIMIT_NOFILE: sys::c_int = 7;

    fn sockopt_int(fd: RawFd, name: sys::c_int, value: sys::c_int) -> io::Result<()> {
        // SAFETY: value outlives the call; size matches.
        let rc = unsafe {
            sys::setsockopt(
                fd,
                SOL_SOCKET,
                name,
                &value as *const sys::c_int as *const sys::c_void,
                std::mem::size_of::<sys::c_int>() as u32,
            )
        };
        if rc < 0 {
            Err(last_error())
        } else {
            Ok(())
        }
    }

    /// Set `SO_REUSEPORT` so several listeners can share one port (the
    /// kernel load-balances accepts across them).
    pub fn set_reuseport(fd: RawFd) -> io::Result<()> {
        sockopt_int(fd, SO_REUSEPORT, 1)
    }

    /// Shrink (or grow) the socket send buffer — the test hook that
    /// forces partial writes deterministically.
    pub fn set_sndbuf(fd: RawFd, bytes: usize) -> io::Result<()> {
        sockopt_int(fd, SO_SNDBUF, bytes.min(i32::MAX as usize) as sys::c_int)
    }

    /// Shrink (or grow) the socket receive buffer — paired with
    /// [`set_sndbuf`] to bound in-flight bytes in partial-write tests.
    pub fn set_rcvbuf(fd: RawFd, bytes: usize) -> io::Result<()> {
        sockopt_int(fd, SO_RCVBUF, bytes.min(i32::MAX as usize) as sys::c_int)
    }

    #[repr(C)]
    struct SockaddrIn {
        family: u16,
        port_be: u16,
        addr_be: u32,
        zero: [u8; 8],
    }

    /// Bind an IPv4 listener with `SO_REUSEPORT` (and `SO_REUSEADDR`)
    /// set *before* bind, which `std::net::TcpListener::bind` cannot
    /// do. Each reactor shard binds its own listener on the same port.
    pub fn bind_reuseport_v4(addr: SocketAddrV4, backlog: i32) -> io::Result<TcpListener> {
        // SAFETY: plain syscall.
        let fd = unsafe { sys::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0) };
        if fd < 0 {
            return Err(last_error());
        }
        // Close on any error path below.
        struct Guard(Option<RawFd>);
        impl Drop for Guard {
            fn drop(&mut self) {
                if let Some(fd) = self.0 {
                    // SAFETY: fd is owned and unconsumed.
                    unsafe { sys::close(fd) };
                }
            }
        }
        let mut guard = Guard(Some(fd));
        sockopt_int(fd, SO_REUSEADDR, 1)?;
        set_reuseport(fd)?;
        let sa = SockaddrIn {
            family: AF_INET as u16,
            port_be: addr.port().to_be(),
            addr_be: u32::from(*addr.ip()).to_be(),
            zero: [0; 8],
        };
        // SAFETY: sa outlives the call; length matches the struct.
        let rc = unsafe {
            sys::bind(
                fd,
                &sa as *const SockaddrIn as *const sys::c_void,
                std::mem::size_of::<SockaddrIn>() as u32,
            )
        };
        if rc < 0 {
            return Err(last_error());
        }
        // SAFETY: plain syscall on the owned fd.
        if unsafe { sys::listen(fd, backlog) } < 0 {
            return Err(last_error());
        }
        guard.0 = None;
        // SAFETY: fd is a freshly created, listening socket we own.
        Ok(unsafe { TcpListener::from_raw_fd(fd) })
    }

    /// Raise the soft open-files limit toward `want` (clamped to the
    /// hard limit). Returns the resulting soft limit. High-connection
    /// load runs call this so 4096 keep-alive sockets fit under
    /// environments whose default soft limit is 1024.
    pub fn raise_nofile_limit(want: u64) -> io::Result<u64> {
        let mut lim = sys::rlimit {
            rlim_cur: 0,
            rlim_max: 0,
        };
        // SAFETY: lim is valid and writable.
        if unsafe { sys::getrlimit(RLIMIT_NOFILE, &mut lim) } < 0 {
            return Err(last_error());
        }
        if lim.rlim_cur >= want {
            return Ok(lim.rlim_cur);
        }
        let next = sys::rlimit {
            rlim_cur: want.min(lim.rlim_max),
            rlim_max: lim.rlim_max,
        };
        // SAFETY: next is valid for the duration of the call.
        if unsafe { sys::setrlimit(RLIMIT_NOFILE, &next) } < 0 {
            return Err(last_error());
        }
        Ok(next.rlim_cur)
    }
}

#[cfg(target_os = "linux")]
fn epoll_ctl(
    epfd: RawFd,
    op: sys::c_int,
    fd: RawFd,
    key: usize,
    interest: Interest,
) -> io::Result<()> {
    let mut ev = sys::epoll_event {
        events: (if interest.readable {
            sys::EPOLLIN | sys::EPOLLPRI
        } else {
            0
        }) | (if interest.writable { sys::EPOLLOUT } else { 0 })
            | sys::EPOLLRDHUP,
        data: key as u64,
    };
    // SAFETY: ev is a valid epoll_event for the duration of the call.
    let rc = unsafe { sys::epoll_ctl(epfd, op, fd, &mut ev) };
    if rc < 0 {
        Err(last_error())
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    fn backends() -> Vec<Poller> {
        let mut v = vec![Poller::with_backend(BackendKind::Poll).unwrap()];
        #[cfg(target_os = "linux")]
        v.push(Poller::with_backend(BackendKind::Epoll).unwrap());
        v
    }

    /// A connected nonblocking socket pair via loopback.
    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let a = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (b, _) = listener.accept().unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        (a, b)
    }

    #[test]
    fn readiness_round_trip_on_both_backends() {
        for poller in backends() {
            let (mut a, mut b) = pair();
            poller.add(b.as_raw_fd(), 7, Interest::READ).unwrap();

            // Nothing ready yet: timeout elapses with zero events.
            let mut events = Vec::new();
            let n = poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert_eq!(n, 0, "{:?}", poller.kind());

            a.write_all(b"x").unwrap();
            let n = poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(n, 1, "{:?}", poller.kind());
            assert_eq!(events[0].key, 7);
            assert!(events[0].readable);

            // Level-triggered: still ready until drained.
            events.clear();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(events.len(), 1);
            let mut buf = [0u8; 8];
            assert_eq!(b.read(&mut buf).unwrap(), 1);
            events.clear();
            let n = poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert_eq!(n, 0, "drained fd stops reporting");

            poller.delete(b.as_raw_fd()).unwrap();
        }
    }

    #[test]
    fn modify_switches_interest_and_peer_close_reports() {
        for poller in backends() {
            let (a, b) = pair();
            // Write interest on an idle socket: immediately writable.
            poller.add(b.as_raw_fd(), 1, Interest::WRITE).unwrap();
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert!(events[0].writable, "{:?}", poller.kind());

            // Switch to read-only interest; a peer close shows up
            // readable (EOF).
            poller.modify(b.as_raw_fd(), 2, Interest::READ).unwrap();
            drop(a);
            events.clear();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(events[0].key, 2);
            assert!(events[0].readable);
            poller.delete(b.as_raw_fd()).unwrap();
            drop(b);
        }
    }

    #[test]
    fn add_rejects_duplicates_on_poll_backend() {
        let poller = Poller::with_backend(BackendKind::Poll).unwrap();
        let (_a, b) = pair();
        poller.add(b.as_raw_fd(), 1, Interest::READ).unwrap();
        assert!(poller.add(b.as_raw_fd(), 2, Interest::READ).is_err());
        assert!(poller.delete(b.as_raw_fd()).is_ok());
        assert!(poller.delete(b.as_raw_fd()).is_err());
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn reuseport_listeners_share_one_port() {
        use std::net::SocketAddrV4;
        let first = os::bind_reuseport_v4("127.0.0.1:0".parse().unwrap(), 64).unwrap();
        let port = first.local_addr().unwrap().port();
        let again: SocketAddrV4 = format!("127.0.0.1:{port}").parse().unwrap();
        let second = os::bind_reuseport_v4(again, 64).unwrap();
        assert_eq!(second.local_addr().unwrap().port(), port);
        // Both listeners accept: connect twice, each connection lands
        // somewhere and completes.
        let c1 = TcpStream::connect(("127.0.0.1", port)).unwrap();
        let c2 = TcpStream::connect(("127.0.0.1", port)).unwrap();
        drop((c1, c2, first, second));
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn nofile_limit_is_queryable_and_monotone() {
        let now = os::raise_nofile_limit(64).unwrap();
        assert!(now >= 64);
        let bigger = os::raise_nofile_limit(now).unwrap();
        assert!(bigger >= now);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn sndbuf_is_settable() {
        let (_a, b) = pair();
        os::set_sndbuf(b.as_raw_fd(), 4096).unwrap();
    }
}
