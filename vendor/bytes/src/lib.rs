//! Offline stand-in for the `bytes` crate, implementing the subset of
//! its API that `mlpeer-bgp`'s wire and MRT codecs use: [`Bytes`] (a
//! cheaply cloneable, sliceable view of an immutable buffer),
//! [`BytesMut`] (a growable buffer), and the [`Buf`] / [`BufMut`]
//! cursor traits. Big-endian accessors only, like the codecs need.

#![forbid(unsafe_code)]

use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// Read cursor over a byte buffer.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Whether any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Skip `n` bytes.
    ///
    /// # Panics
    /// Panics if `n > self.remaining()`.
    fn advance(&mut self, n: usize);

    /// Read one byte.
    fn get_u8(&mut self) -> u8;

    /// Read a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        u16::from_be_bytes([self.get_u8(), self.get_u8()])
    }

    /// Read a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes([self.get_u8(), self.get_u8(), self.get_u8(), self.get_u8()])
    }

    /// Fill `dst` from the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]);
}

/// Write cursor appending to a byte buffer.
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, v: u8);

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        for b in v.to_be_bytes() {
            self.put_u8(b);
        }
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        for b in v.to_be_bytes() {
            self.put_u8(b);
        }
    }

    /// Append a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Append `n` copies of `byte`.
    fn put_bytes(&mut self, byte: u8, n: usize);
}

/// An immutable, cheaply cloneable byte buffer with O(1) slicing.
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Length of the view.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view of this buffer (range is relative to the view).
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice {lo}..{hi} out of bounds ({})", self.len());
        Bytes { data: Arc::clone(&self.data), start: self.start + lo, end: self.start + hi }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes { data: v.into(), start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        v.to_vec().into()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance {n} past end ({})", self.len());
        self.start += n;
    }

    fn get_u8(&mut self) -> u8 {
        let b = self.data[self.start];
        self.start += 1;
        b
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "copy_to_slice past end");
        dst.copy_from_slice(&self.data[self.start..self.start + dst.len()]);
        self.start += dst.len();
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Current length.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Split off and return the first `n` bytes, keeping the rest.
    ///
    /// # Panics
    /// Panics if `n > self.len()`.
    pub fn split_to(&mut self, n: usize) -> BytesMut {
        assert!(n <= self.len(), "split_to {n} past end ({})", self.len());
        let rest = self.data.split_off(n);
        BytesMut { data: std::mem::replace(&mut self.data, rest) }
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        self.data.into()
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    fn put_bytes(&mut self, byte: u8, n: usize) {
        self.data.resize(self.data.len() + n, byte);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_slice() {
        let mut b = BytesMut::new();
        b.put_u8(1);
        b.put_u16(0x0203);
        b.put_u32(0x04050607);
        b.put_slice(&[8, 9]);
        b.put_bytes(0xFF, 2);
        assert_eq!(b.len(), 11);
        let mut f = b.freeze();
        assert_eq!(f[0], 1);
        let tail = f.slice(7..9);
        assert_eq!(&tail[..], &[8, 9]);
        assert_eq!(f.get_u8(), 1);
        assert_eq!(f.get_u16(), 0x0203);
        assert_eq!(f.get_u32(), 0x04050607);
        let mut two = [0u8; 2];
        f.copy_to_slice(&mut two);
        assert_eq!(two, [8, 9]);
        f.advance(1);
        assert_eq!(f.remaining(), 1);
    }

    #[test]
    fn split_to_keeps_rest() {
        let mut b = BytesMut::new();
        b.put_slice(&[1, 2, 3, 4]);
        let head = b.split_to(3);
        assert_eq!(&head[..], &[1, 2, 3]);
        assert_eq!(&b[..], &[4]);
    }
}
